package core

import (
	"sync"
	"sync/atomic"
)

// The shared translation cache makes one synthesized Sim safely shareable
// across goroutines. Translation (compiling an instruction specialized for a
// fixed PC and encoding) is pure with respect to the Sim — it reads only the
// immutable spec/buildset products built by Synthesize — so translated units
// can be published once and executed concurrently by any number of Execs.
//
// Concurrency design (the mach.Mem contract, see internal/mach):
//
//   - Sim and everything reachable from it after Synthesize returns is
//     read-only during execution; the shared cache is the only mutable state
//     hanging off a Sim and it is guarded here.
//   - Each Exec (and its Machine/Memory) is confined to one goroutine. The
//     per-Exec first-level caches therefore need no locks and keep the hot
//     path identical to the serial engine: a map probe plus a page-generation
//     check.
//   - The shared cache is a second level consulted only on first-level
//     misses. Entries are keyed by PC and validated against the instruction
//     bits the caller just fetched from its own memory, so Execs running
//     different program images through one Sim can never observe each
//     other's translations as their own.
//
// The cache is sharded to keep contention negligible when many workers warm
// up the same Sim at once: each shard has its own RWMutex, and lookups take
// only a read lock.

const cacheShards = 64

// shardOf maps a PC to a shard with a Fibonacci hash of its word address
// (low bits of instruction PCs are almost always zero).
func shardOf(pc uint64) int {
	return int((pc >> 2) * 0x9e3779b97f4a7c15 >> 58)
}

type unitShard struct {
	mu sync.RWMutex
	m  map[uint64]*unit
}

type blockShard struct {
	mu sync.RWMutex
	m  map[uint64]*xblock
}

// sharedCache is the per-Sim second-level translation cache.
type sharedCache struct {
	units    [cacheShards]unitShard
	blocks   [cacheShards]blockShard
	shardCap int

	// Mutation counters. Atomics because inserts come from any Exec's
	// goroutine; they sit on the translation (miss) path only, so the
	// atomic adds never touch the hot lookup path.
	unitInserts  atomic.Uint64
	unitFlushes  atomic.Uint64
	blockInserts atomic.Uint64
	blockFlushes atomic.Uint64
}

// SharedCacheStats counts mutations of one Sim's shared translation cache.
// Lookup traffic is counted per Exec (see ExecStats); these are the
// publish-side events: insertions and the wholesale shard flushes the
// bulk-eviction policy performs at capacity.
type SharedCacheStats struct {
	UnitInsertions    uint64
	UnitShardFlushes  uint64
	BlockInsertions   uint64
	BlockShardFlushes uint64
}

// SharedCacheStats returns the Sim's shared-cache mutation counts. Safe
// to call concurrently with execution; each field is read atomically.
func (s *Sim) SharedCacheStats() SharedCacheStats {
	return SharedCacheStats{
		UnitInsertions:    s.shared.unitInserts.Load(),
		UnitShardFlushes:  s.shared.unitFlushes.Load(),
		BlockInsertions:   s.shared.blockInserts.Load(),
		BlockShardFlushes: s.shared.blockFlushes.Load(),
	}
}

func newSharedCache(cap int) *sharedCache {
	sc := &sharedCache{shardCap: cap / cacheShards}
	if sc.shardCap < 1 {
		sc.shardCap = 1
	}
	return sc
}

// lookupUnit returns the published unit for (pc, bits), or nil. The bits
// comparison is the validity check: a unit translated from a different
// program image (or from code since overwritten) never matches.
func (sc *sharedCache) lookupUnit(pc uint64, bits uint32) *unit {
	sh := &sc.units[shardOf(pc)]
	sh.mu.RLock()
	u := sh.m[pc]
	sh.mu.RUnlock()
	if u != nil && u.bits == bits {
		return u
	}
	return nil
}

// insertUnit publishes a freshly translated unit. When a shard fills, it is
// flushed wholesale (the same bulk-eviction policy the per-Exec caches use).
func (sc *sharedCache) insertUnit(pc uint64, u *unit) {
	sh := &sc.units[shardOf(pc)]
	sh.mu.Lock()
	if sh.m == nil || len(sh.m) >= sc.shardCap {
		if len(sh.m) > 0 {
			sc.unitFlushes.Add(1)
		}
		sh.m = make(map[uint64]*unit)
	}
	sh.m[pc] = u
	sh.mu.Unlock()
	sc.unitInserts.Add(1)
}

// lookupBlock returns the published block starting at pc, or nil. The
// caller must validate every unit's bits against its own memory before
// executing it (blocks span many instructions, so a single-bits check is
// not sufficient).
func (sc *sharedCache) lookupBlock(pc uint64) *xblock {
	sh := &sc.blocks[shardOf(pc)]
	sh.mu.RLock()
	blk := sh.m[pc]
	sh.mu.RUnlock()
	return blk
}

// insertBlock publishes a freshly translated block.
func (sc *sharedCache) insertBlock(pc uint64, blk *xblock) {
	sh := &sc.blocks[shardOf(pc)]
	sh.mu.Lock()
	if sh.m == nil || len(sh.m) >= sc.shardCap {
		if len(sh.m) > 0 {
			sc.blockFlushes.Add(1)
		}
		sh.m = make(map[uint64]*xblock)
	}
	sh.m[pc] = blk
	sh.mu.Unlock()
	sc.blockInserts.Add(1)
}
