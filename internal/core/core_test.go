package core

import (
	"strings"
	"testing"
	"testing/quick"

	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// A small toy ISA exercising every engine mechanism: ALU ops, memory,
// branches, predication, syscalls, and a dozen buildsets.
const toySrc = `
isa "toy";
word 64;
endian little;
instrsize 4;

space r count 16 width 64 zero 15;

step translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
decodestep decode;
fetchstep fetch;
excstep exception;

field src_a 64;
field src_b 64;
field dest_v 64;
field effective_addr 64;
field branch_taken 1;
field alu_class 8;

accessor R space r;

operandname src1 read(opread) = src_a;
operandname src2 read(opread) = src_b;
operandname dest1 write(writeback) = dest_v;

format ALUF { op[31:26]; ra[25:21]; rb[20:16]; rc[15:11]; }
format MEMF { op[31:26]; ra[25:21]; rb[20:16]; disp[15:0] signed; }
format BRF  { op[31:26]; ra[25:21]; disp[20:0] signed; }

class memclass, aluclass;

instr ADD format ALUF class aluclass match op == 1 asm "add r%rc, r%ra, r%rb";
instr SUB format ALUF class aluclass match op == 5 asm "sub r%rc, r%ra, r%rb";
instr XOR format ALUF class aluclass match op == 6 asm "xor r%rc, r%ra, r%rb";
instr MUL format ALUF class aluclass match op == 7 asm "mul r%rc, r%ra, r%rb";
instr ADDNZ format ALUF class aluclass match op == 8 asm "addnz r%rc, r%ra, r%rb";
instr LDW format MEMF class memclass match op == 2 asm "ldw r%ra, %disp(r%rb)";
instr STW format MEMF class memclass match op == 3 asm "stw r%ra, %disp(r%rb)";
instr BEQ format BRF match op == 4 asm "beq r%ra, %disp";
instr SYS format ALUF match op == 62 asm "sys";
instr HLT format ALUF match op == 63 asm "hlt";

operand aluclass src1 R(ra);
operand aluclass src2 R(rb);
operand aluclass dest1 R(rc);
operand memclass src2 R(rb);
operand LDW dest1 R(ra);
operand STW src1 R(ra);
operand BEQ src1 R(ra);
operand HLT src1 R(ra);

action aluclass@decode = { alu_class = 1; }
action ADD@execute = { dest_v = src_a + src_b; }
action SUB@execute = { dest_v = src_a - src_b; }
action XOR@execute = { dest_v = src_a ^ src_b; }
action MUL@execute = { dest_v = src_a * src_b; }
action ADDNZ@opread = { nullify = src_b == 0; }
override action ADDNZ@opread = { nullify = src_b == 0; }
action ADDNZ@execute = { dest_v = src_a + src_b; }
action memclass@execute = { effective_addr = src_b + sext16(disp); }
action LDW@memory = { dest_v = load64(effective_addr); }
action STW@memory = { store64(effective_addr, src_a); }
action BEQ@execute = {
  branch_taken = src_a == 0;
  if src_a == 0 {
    next_pc = pc + 4 + (sext(disp, 21) << 2);
  }
}
action SYS@execute = { syscall(); }
action HLT@execute = { halt(src_a); }
action ALL@exception = {
  if fault != 0 && fault != FAULT_HALT {
    halt(128 + fault);
  }
}

buildset one_all {
  visibility all;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset one_min {
  visibility min;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset one_decode {
  visibility min show opcode, src1_idx, src2_idx, dest1_idx, effective_addr;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset one_all_spec {
  visibility all;
  speculation on;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset step_all {
  visibility all;
  entrypoint ep_fetch = translate_pc, fetch;
  entrypoint ep_decode = decode;
  entrypoint ep_opread = opread;
  entrypoint ep_execute = execute;
  entrypoint ep_memory = memory;
  entrypoint ep_writeback = writeback;
  entrypoint ep_exception = exception;
}
buildset block_min {
  visibility min;
  mode block;
  entrypoint run = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset block_all {
  visibility all;
  mode block;
  entrypoint run = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset block_min_spec {
  visibility min;
  mode block;
  speculation on;
  entrypoint run = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
buildset step_min_unchecked {
  unchecked;
  visibility min;
  entrypoint ep_fetch = translate_pc, fetch;
  entrypoint ep_decode = decode;
  entrypoint ep_opread = opread;
  entrypoint ep_execute = execute;
  entrypoint ep_memory = memory;
  entrypoint ep_writeback = writeback;
  entrypoint ep_exception = exception;
}
`

// Encodings for the toy ISA.
func encALU(op, ra, rb, rc uint32) uint32 { return op<<26 | ra<<21 | rb<<16 | rc<<11 }
func encMEM(op, ra, rb uint32, disp int32) uint32 {
	return op<<26 | ra<<21 | rb<<16 | uint32(uint16(disp))
}
func encBR(op, ra uint32, disp int32) uint32 {
	return op<<26 | ra<<21 | uint32(disp)&0x1fffff
}

const (
	opADD, opLDW, opSTW, opBEQ, opSUB, opXOR, opMUL, opADDNZ = 1, 2, 3, 4, 5, 6, 7, 8
	opSYS, opHLT                                             = 62, 63
	codeBase                                                 = 0x10000
	dataBase                                                 = 0x40000
)

var toySpecCache *lis.Spec

func toySpec(t *testing.T) *lis.Spec {
	t.Helper()
	if toySpecCache == nil {
		spec, err := lis.Parse("toy.lis", toySrc)
		if err != nil {
			t.Fatalf("toy spec: %v", err)
		}
		toySpecCache = spec
	}
	return toySpecCache
}

func synth(t *testing.T, bs string, opts Options) *Sim {
	t.Helper()
	s, err := Synthesize(toySpec(t), bs, opts)
	if err != nil {
		t.Fatalf("synthesize %s: %v", bs, err)
	}
	return s
}

// loadProgram writes instruction words at codeBase and points the machine
// there.
func loadProgram(spec *lis.Spec, words []uint32) *mach.Machine {
	m := spec.NewMachine()
	for i, w := range words {
		m.Mem.Store(codeBase+uint64(i)*4, uint64(w), 4)
	}
	m.PC = codeBase
	return m
}

// aluProgram: r3 = r1 + r2; r4 = r3 - r1; store r4; load it back into r5;
// halt with r0 (exit code 0).
func aluProgram() []uint32 {
	return []uint32{
		encALU(opADD, 1, 2, 3),  // r3 = r1 + r2
		encALU(opSUB, 3, 1, 4),  // r4 = r3 - r1
		encMEM(opSTW, 4, 6, 16), // mem[r6+16] = r4
		encMEM(opLDW, 5, 6, 16), // r5 = mem[r6+16]
		encALU(opHLT, 0, 0, 0),  // halt(r0)
	}
}

func initALU(m *mach.Machine) {
	r := m.MustSpace("r")
	r.Vals[1] = 5
	r.Vals[2] = 7
	r.Vals[6] = dataBase
}

func checkALU(t *testing.T, m *mach.Machine, label string) {
	t.Helper()
	r := m.MustSpace("r")
	if r.Vals[3] != 12 || r.Vals[4] != 7 || r.Vals[5] != 7 {
		t.Errorf("%s: r3=%d r4=%d r5=%d, want 12 7 7", label, r.Vals[3], r.Vals[4], r.Vals[5])
	}
	if v, _ := m.Mem.Load(dataBase+16, 8); v != 7 {
		t.Errorf("%s: mem = %d, want 7", label, v)
	}
	if !m.Halted || m.ExitCode != 0 {
		t.Errorf("%s: halted=%v code=%d", label, m.Halted, m.ExitCode)
	}
	if m.Instret != 4 {
		t.Errorf("%s: instret = %d, want 4", label, m.Instret)
	}
}

func TestExecOneBasicTranslated(t *testing.T) {
	s := synth(t, "one_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	x.Run(100)
	checkALU(t, m, "translated")
	if x.Work() == 0 {
		t.Error("work counter did not advance")
	}
}

func TestExecOneBasicInterpreted(t *testing.T) {
	s := synth(t, "one_all", Options{NoTranslate: true})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	s.NewExec(m).Run(100)
	checkALU(t, m, "interpreted")
}

func TestAllBuildsetsAgree(t *testing.T) {
	for _, bs := range []string{
		"one_all", "one_min", "one_decode", "one_all_spec",
		"step_all", "block_min", "block_all", "block_min_spec",
	} {
		t.Run(bs, func(t *testing.T) {
			s := synth(t, bs, Options{})
			m := loadProgram(s.Spec, aluProgram())
			initALU(m)
			s.NewExec(m).Run(100)
			checkALU(t, m, bs)
		})
	}
}

func TestBranchTakenAndNotTaken(t *testing.T) {
	// BEQ r1 skips the next instruction when r1 == 0.
	prog := []uint32{
		encBR(opBEQ, 1, 1),      // if r1==0 skip next
		encALU(opADD, 2, 2, 3),  // r3 = r2+r2
		encALU(opADD, 2, 15, 4), // r4 = r2 (r15 is zero)
		encALU(opHLT, 15, 0, 0),
	}
	for _, bs := range []string{"one_all", "block_min", "step_all"} {
		s := synth(t, bs, Options{})

		m := loadProgram(s.Spec, prog)
		m.MustSpace("r").Vals[2] = 9
		m.MustSpace("r").Vals[1] = 0 // taken
		s.NewExec(m).Run(100)
		r := m.MustSpace("r")
		if r.Vals[3] != 0 || r.Vals[4] != 9 {
			t.Errorf("%s taken: r3=%d r4=%d, want 0 9", bs, r.Vals[3], r.Vals[4])
		}

		m = loadProgram(s.Spec, prog)
		m.MustSpace("r").Vals[2] = 9
		m.MustSpace("r").Vals[1] = 1 // not taken
		s.NewExec(m).Run(100)
		r = m.MustSpace("r")
		if r.Vals[3] != 18 || r.Vals[4] != 9 {
			t.Errorf("%s not taken: r3=%d r4=%d, want 18 9", bs, r.Vals[3], r.Vals[4])
		}
	}
}

func TestBackwardBranchLoop(t *testing.T) {
	// r1 counts down from 5 by subtracting r2=1; loop while r1 != 0.
	prog := []uint32{
		encALU(opSUB, 1, 2, 1), // r1 = r1 - r2
		encBR(opBEQ, 1, 1),     // if r1 == 0 -> skip the backward jump
		encBR(opBEQ, 15, -3),   // always taken (r15==0): back to start
		encALU(opHLT, 15, 0, 0),
	}
	for _, bs := range []string{"one_all", "block_min"} {
		s := synth(t, bs, Options{})
		m := loadProgram(s.Spec, prog)
		m.MustSpace("r").Vals[1] = 5
		m.MustSpace("r").Vals[2] = 1
		s.NewExec(m).Run(1000)
		if !m.Halted {
			t.Fatalf("%s: loop did not terminate", bs)
		}
		if got := m.MustSpace("r").Vals[1]; got != 0 {
			t.Errorf("%s: r1 = %d", bs, got)
		}
		// 4 full iterations of 3 instructions, then SUB + taken skip; the
		// halting HLT does not retire.
		if m.Instret != 14 {
			t.Errorf("%s: instret = %d, want 14", bs, m.Instret)
		}
	}
}

// TestExecStatsCounts pins the translation-cache counter semantics the obs
// layer exports: a first Exec translates every distinct PC once and then
// hits its private first-level cache; a second Exec on the same Sim finds
// everything in the shared cache and translates nothing.
func TestExecStatsCounts(t *testing.T) {
	// The countdown loop touches 4 distinct PCs over 15 executed
	// instructions (14 retired + the halting HLT).
	prog := []uint32{
		encALU(opSUB, 1, 2, 1), // r1 = r1 - r2
		encBR(opBEQ, 1, 1),     // if r1 == 0 -> skip the backward jump
		encBR(opBEQ, 15, -3),   // always taken (r15==0): back to start
		encALU(opHLT, 15, 0, 0),
	}
	run := func(s *Sim) ExecStats {
		m := loadProgram(s.Spec, prog)
		m.MustSpace("r").Vals[1] = 5
		m.MustSpace("r").Vals[2] = 1
		x := s.NewExec(m)
		x.Run(1000)
		if !m.Halted {
			t.Fatal("loop did not terminate")
		}
		return x.Stats()
	}

	s := synth(t, "one_all", Options{})
	st1 := run(s)
	if st1.UnitTranslations != 4 || st1.UnitSharedHits != 0 {
		t.Errorf("first exec: translations=%d sharedHits=%d, want 4/0",
			st1.UnitTranslations, st1.UnitSharedHits)
	}
	if st1.UnitL1Hits != 11 { // 15 lookups - 4 cold misses
		t.Errorf("first exec: l1Hits=%d, want 11", st1.UnitL1Hits)
	}

	st2 := run(s)
	if st2.UnitTranslations != 0 || st2.UnitSharedHits != 4 || st2.UnitL1Hits != 11 {
		t.Errorf("second exec: translations=%d sharedHits=%d l1Hits=%d, want 0/4/11",
			st2.UnitTranslations, st2.UnitSharedHits, st2.UnitL1Hits)
	}

	scs := s.SharedCacheStats()
	if scs.UnitInsertions != 4 {
		t.Errorf("shared insertions = %d, want 4", scs.UnitInsertions)
	}

	var merged ExecStats
	merged.Merge(st1)
	merged.Merge(st2)
	if merged.UnitTranslations != 4 || merged.UnitSharedHits != 4 || merged.UnitL1Hits != 22 {
		t.Errorf("merge: %+v", merged)
	}

	// The block interface counts builds and shared reuse the same way.
	sb := synth(t, "block_min", Options{})
	b1 := run(sb)
	if b1.BlockBuilds == 0 || b1.BlockSharedHits != 0 {
		t.Errorf("first block exec: %+v", b1)
	}
	b2 := run(sb)
	if b2.BlockBuilds != 0 || b2.BlockSharedHits == 0 {
		t.Errorf("second block exec should reuse shared blocks: %+v", b2)
	}
	if bscs := sb.SharedCacheStats(); bscs.BlockInsertions != b1.BlockBuilds {
		t.Errorf("block insertions %d != builds %d", bscs.BlockInsertions, b1.BlockBuilds)
	}
}

func TestRecordInformationalDetail(t *testing.T) {
	sAll := synth(t, "one_all", Options{})
	sMin := synth(t, "one_min", Options{})
	sDec := synth(t, "one_decode", Options{})

	if sMin.Layout.NumSlots() != 0 {
		t.Errorf("min layout has %d slots", sMin.Layout.NumSlots())
	}
	// opcode is a header field; the four shown non-builtins get slots.
	if n := sDec.Layout.NumSlots(); n != 4 {
		t.Errorf("decode layout has %d slots, want 4", n)
	}
	if sAll.Layout.NumSlots() <= sDec.Layout.NumSlots() {
		t.Error("all layout should exceed decode layout")
	}

	m := loadProgram(sAll.Spec, aluProgram())
	initALU(m)
	x := sAll.NewExec(m)
	var rec Record
	x.ExecOne(&rec) // ADD
	if rec.InstrID != uint16(sAll.Spec.Instr("ADD").ID) {
		t.Errorf("rec.InstrID = %d", rec.InstrID)
	}
	slot := sAll.Layout.MustSlot("dest_v")
	if rec.Vals[slot] != 12 {
		t.Errorf("dest_v in record = %d, want 12", rec.Vals[slot])
	}
	if rec.PC != codeBase || rec.NextPC != codeBase+4 {
		t.Errorf("rec pc/next = %#x/%#x", rec.PC, rec.NextPC)
	}
	x.ExecOne(&rec) // SUB
	x.ExecOne(&rec) // STW
	ea := sAll.Layout.MustSlot("effective_addr")
	if rec.Vals[ea] != dataBase+16 {
		t.Errorf("effective_addr = %#x", rec.Vals[ea])
	}
	// src indices are decode information.
	if got := rec.Vals[sAll.Layout.MustSlot("src1_idx")]; got != 4 {
		t.Errorf("src1_idx = %d, want 4", got)
	}
}

func TestStepInterfaceOperandInjection(t *testing.T) {
	// Timing-directed control: between operand read and execute, the
	// timing simulator overwrites a source value (bypass injection).
	s := synth(t, "step_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	var rec Record
	rec.PC = m.PC
	for ep := 0; ep < len(s.BS.Entrypoints); ep++ {
		if s.BS.Entrypoints[ep].Name == "ep_execute" {
			rec.Vals[s.Layout.MustSlot("src_a")] = 100
		}
		x.StepCall(ep, &rec)
	}
	if got := m.MustSpace("r").Vals[3]; got != 107 {
		t.Errorf("injected add result = %d, want 107", got)
	}
}

func TestStepInterfaceRedirectedOperandIndex(t *testing.T) {
	// Rewriting the decoded register index between decode and operand read
	// redirects the architectural access.
	s := synth(t, "step_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	m.MustSpace("r").Vals[9] = 1000
	x := s.NewExec(m)
	var rec Record
	rec.PC = m.PC
	for ep := 0; ep < len(s.BS.Entrypoints); ep++ {
		if s.BS.Entrypoints[ep].Name == "ep_opread" {
			rec.Vals[s.Layout.MustSlot("src1_idx")] = 9
		}
		x.StepCall(ep, &rec)
	}
	if got := m.MustSpace("r").Vals[3]; got != 1007 {
		t.Errorf("redirected add result = %d, want 1007", got)
	}
}

func TestNullifyPredication(t *testing.T) {
	prog := []uint32{
		encALU(opADDNZ, 1, 2, 3), // r3 = r1+r2 if r2 != 0
		encALU(opADDNZ, 1, 4, 5), // r5 = r1+r4 if r4 != 0 (r4==0: nullified)
		encALU(opHLT, 15, 0, 0),
	}
	for _, bs := range []string{"one_all", "block_min", "step_all"} {
		s := synth(t, bs, Options{})
		m := loadProgram(s.Spec, prog)
		r := m.MustSpace("r")
		r.Vals[1], r.Vals[2], r.Vals[5] = 3, 4, 99
		s.NewExec(m).Run(10)
		if r.Vals[3] != 7 {
			t.Errorf("%s: r3 = %d, want 7", bs, r.Vals[3])
		}
		if r.Vals[5] != 99 {
			t.Errorf("%s: nullified write changed r5 to %d", bs, r.Vals[5])
		}
	}
}

func TestNullifiedRecordFlag(t *testing.T) {
	s := synth(t, "one_all", Options{})
	m := loadProgram(s.Spec, []uint32{encALU(opADDNZ, 1, 4, 5), encALU(opHLT, 15, 0, 0)})
	x := s.NewExec(m)
	var rec Record
	x.ExecOne(&rec)
	if !rec.Nullified {
		t.Error("record should be flagged nullified")
	}
	if m.Instret != 1 {
		t.Errorf("nullified instruction should still retire: instret=%d", m.Instret)
	}
}

func TestSpeculationRollback(t *testing.T) {
	s := synth(t, "one_all_spec", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	var rec Record
	mark := m.Journal.Mark()
	snap := m.Snapshot()
	x.ExecOne(&rec)
	x.ExecOne(&rec)
	x.ExecOne(&rec) // includes the store
	if v, _ := m.Mem.Load(dataBase+16, 8); v != 7 {
		t.Fatalf("store did not land: %d", v)
	}
	m.Journal.Rollback(m, mark)
	// The speculation driver restores the PC it recorded at the mark.
	m.PC = codeBase
	if ok, diff := snap.Equal(m.Snapshot(), []string{"r"}); !ok {
		t.Errorf("registers not restored: %s", diff)
	}
	if v, _ := m.Mem.Load(dataBase+16, 8); v != 0 {
		t.Errorf("memory not restored: %d", v)
	}
	// Re-execution after rollback reproduces the same result. Instret is a
	// performance counter, not architectural state; reset it for checkALU.
	m.Instret = 0
	x.Run(100)
	checkALU(t, m, "replay-after-rollback")
}

func TestNonSpecBuildsetDoesNotJournal(t *testing.T) {
	s := synth(t, "one_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	s.NewExec(m).Run(100)
	if m.Journal.Len() != 0 {
		t.Errorf("non-speculative run journaled %d entries", m.Journal.Len())
	}
}

func TestBlockMinProducesNoRecords(t *testing.T) {
	s := synth(t, "block_min", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	var batch Batch
	x.ExecBlock(&batch)
	if len(batch.Recs) != 0 {
		t.Errorf("min-detail block produced %d records", len(batch.Recs))
	}
	if batch.N != 5 && batch.N != 4 {
		// The block ends at HLT (barrier); HLT faults (halt), so 4 commit.
		t.Errorf("batch.N = %d", batch.N)
	}
	if batch.StartPC != codeBase {
		t.Errorf("batch.StartPC = %#x", batch.StartPC)
	}
}

func TestBlockAllProducesRecords(t *testing.T) {
	s := synth(t, "block_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	var batch Batch
	x.ExecBlock(&batch)
	if len(batch.Recs) != 5 { // 4 committed + the halting HLT record
		t.Fatalf("got %d records", len(batch.Recs))
	}
	slot := s.Layout.MustSlot("dest_v")
	if batch.Recs[0].Vals[slot] != 12 {
		t.Errorf("first record dest_v = %d", batch.Recs[0].Vals[slot])
	}
	if batch.Recs[4].Fault != mach.FaultHalt {
		t.Errorf("last record fault = %v", batch.Recs[4].Fault)
	}
}

func TestForceRecordsOption(t *testing.T) {
	s := synth(t, "block_min", Options{ForceRecords: true})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	var batch Batch
	s.NewExec(m).ExecBlock(&batch)
	if len(batch.Recs) == 0 {
		t.Error("ForceRecords produced no records")
	}
	if len(batch.Recs[0].Vals) != 0 {
		t.Error("min-detail records should have no Vals")
	}
}

func TestBlockEndsAtCTI(t *testing.T) {
	s := synth(t, "block_min", Options{})
	m := loadProgram(s.Spec, []uint32{
		encALU(opADD, 1, 2, 3),
		encBR(opBEQ, 15, 1), // CTI ends block
		encALU(opADD, 1, 2, 4),
		encALU(opHLT, 15, 0, 0),
	})
	x := s.NewExec(m)
	var batch Batch
	x.ExecBlock(&batch)
	if batch.N != 2 {
		t.Errorf("block executed %d instructions, want 2 (ends at CTI)", batch.N)
	}
}

func TestSelfModifyingCodeInvalidatesTranslation(t *testing.T) {
	// Overwrite the SUB with XOR after the first run and re-run.
	prog := aluProgram()
	for _, bs := range []string{"one_all", "block_min"} {
		s := synth(t, bs, Options{})
		m := loadProgram(s.Spec, prog)
		initALU(m)
		x := s.NewExec(m)
		x.Run(100)
		checkALU(t, m, bs)

		// Patch instruction 1: SUB -> XOR, reset, rerun with same Exec
		// (same translation caches).
		m.Mem.Store(codeBase+4, uint64(encALU(opXOR, 3, 1, 4)), 4)
		m.Halted = false
		m.PC = codeBase
		r := m.MustSpace("r")
		for i := range r.Vals {
			r.Vals[i] = 0
		}
		initALU(m)
		x.Run(100)
		if got := r.Vals[4]; got != 12^5 {
			t.Errorf("%s: after patch r4 = %d, want %d", bs, got, 12^5)
		}
	}
}

func TestIllegalInstructionHalts(t *testing.T) {
	for _, opts := range []Options{{}, {NoTranslate: true}} {
		s := synth(t, "one_min", opts)
		m := loadProgram(s.Spec, []uint32{60 << 26}) // unused primary opcode
		x := s.NewExec(m)
		var rec Record
		ok := x.ExecOne(&rec)
		if ok {
			t.Fatal("illegal instruction reported success")
		}
		if rec.Fault != mach.FaultHalt && rec.Fault != mach.FaultIllegal {
			t.Errorf("fault = %v", rec.Fault)
		}
		if !m.Halted || m.ExitCode != 128+int(mach.FaultIllegal) {
			t.Errorf("halted=%v code=%d", m.Halted, m.ExitCode)
		}
	}
}

func TestLoadFaultRaisesMemoryFault(t *testing.T) {
	// LDW from address 8 (null page) must fault and halt via ALL@exception.
	prog := []uint32{encMEM(opLDW, 5, 15, 8), encALU(opHLT, 15, 0, 0)}
	for _, bs := range []string{"one_all", "block_min", "step_all"} {
		s := synth(t, bs, Options{})
		m := loadProgram(s.Spec, prog)
		s.NewExec(m).Run(10)
		if !m.Halted || m.ExitCode != 128+int(mach.FaultMemory) {
			t.Errorf("%s: halted=%v code=%d", bs, m.Halted, m.ExitCode)
		}
		if m.Instret != 0 {
			t.Errorf("%s: faulting instruction retired", bs)
		}
	}
}

func TestSyscallHandler(t *testing.T) {
	s := synth(t, "one_min", Options{})
	m := loadProgram(s.Spec, []uint32{encALU(opSYS, 0, 0, 0), encALU(opHLT, 15, 0, 0)})
	called := false
	m.Syscall = func(m *mach.Machine) {
		called = true
		m.MustSpace("r").Vals[7] = 1234
	}
	s.NewExec(m).Run(10)
	if !called || m.MustSpace("r").Vals[7] != 1234 {
		t.Error("syscall handler not invoked correctly")
	}
	if !m.Halted {
		t.Error("program did not reach HLT after syscall")
	}
}

func TestSyscallWithoutHandlerIsIllegal(t *testing.T) {
	s := synth(t, "one_min", Options{})
	m := loadProgram(s.Spec, []uint32{encALU(opSYS, 0, 0, 0)})
	s.NewExec(m).Run(10)
	if !m.Halted || m.ExitCode != 128+int(mach.FaultIllegal) {
		t.Errorf("halted=%v code=%d", m.Halted, m.ExitCode)
	}
}

func TestHiddenCrossEntrypointFieldRejected(t *testing.T) {
	_, err := Synthesize(toySpec(t), "step_min_unchecked", Options{})
	if err != nil {
		t.Fatalf("unchecked buildset should synthesize: %v", err)
	}
	// A checked variant of the same interface must be rejected.
	src := strings.Replace(toySrc, "buildset step_min_unchecked {\n  unchecked;",
		"buildset step_min_checked {\n", 1)
	spec, perr := lis.Parse("toy2.lis", src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	_, err = Synthesize(spec, "step_min_checked", Options{})
	if err == nil {
		t.Fatal("hidden cross-entrypoint fields should be rejected")
	}
	if !strings.Contains(err.Error(), "hidden field") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestUncheckedInterfaceBugManifestsQuickly(t *testing.T) {
	// The paper: "it is usually impossible to simulate more than a few
	// hundred instructions before the simulation goes wrong" when a needed
	// field is hidden. With min visibility and step semantics, operand
	// values do not cross entrypoints, so the ADD writes garbage (zero).
	s := synth(t, "step_min_unchecked", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	s.NewExec(m).Run(100)
	if got := m.MustSpace("r").Vals[3]; got == 12 {
		t.Error("hidden-field bug did not manifest (r3 correct despite broken interface)")
	}
}

func TestDCEReducesWork(t *testing.T) {
	prog := aluProgram()
	run := func(bs string, opts Options) uint64 {
		s := synth(t, bs, opts)
		m := loadProgram(s.Spec, prog)
		initALU(m)
		x := s.NewExec(m)
		x.Run(100)
		return x.Work()
	}
	minW := run("one_min", Options{})
	allW := run("one_all", Options{})
	if minW >= allW {
		t.Errorf("min work (%d) should be below all work (%d)", minW, allW)
	}
	noDceW := run("one_min", Options{NoDCE: true})
	if noDceW <= minW {
		t.Errorf("NoDCE work (%d) should exceed DCE'd work (%d)", noDceW, minW)
	}
}

func TestDCEDropsInfoOnlyFields(t *testing.T) {
	// branch_taken and alu_class feed nothing architectural: their
	// computation must vanish at min detail. Compare per-unit static work.
	sMin := synth(t, "one_min", Options{})
	sAll := synth(t, "one_all", Options{})
	beq := toySpec(t).Instr("BEQ")
	if wMin, wAll := sMin.genUnits[beq.ID].work, sAll.genUnits[beq.ID].work; wMin >= wAll {
		t.Errorf("BEQ min work %d >= all work %d", wMin, wAll)
	}
}

func TestWarningsReadBeforeWrite(t *testing.T) {
	src := strings.Replace(toySrc, "action ADD@execute = { dest_v = src_a + src_b; }",
		"action ADD@execute = { dest_v = src_a + src_b + effective_addr; }", 1)
	spec, err := lis.Parse("toy3.lis", src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(spec, "one_all", Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range s.Warnings {
		if strings.Contains(w, "effective_addr") && strings.Contains(w, "read before") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected read-before-write warning, got %v", s.Warnings)
	}
}

func TestUnknownBuildset(t *testing.T) {
	if _, err := Synthesize(toySpec(t), "nope", Options{}); err == nil {
		t.Error("expected error for unknown buildset")
	}
}

func TestDecoderExhaustive(t *testing.T) {
	spec := toySpec(t)
	d := buildDecoder(spec)
	for _, in := range spec.Instrs {
		if got := d.decode(uint32(in.Value)); got != in.ID {
			t.Errorf("decode(%s) = %d, want %d", in.Name, got, in.ID)
		}
	}
	if d.decode(0xfc000000|0x123) != spec.Instr("HLT").ID {
		t.Error("HLT with operand bits should still decode")
	}
	if d.decode(60<<26) != -1 {
		t.Error("unused opcode should not decode")
	}
}

func TestRandomALUProgramsMatchReference(t *testing.T) {
	spec := toySpec(t)
	sims := map[string]*Sim{}
	for _, bs := range []string{"one_all", "one_min", "block_min", "step_all"} {
		sims[bs] = synth(t, bs, Options{})
	}
	type instr struct {
		Op         uint8
		Ra, Rb, Rc uint8
	}
	f := func(seedRegs [8]uint16, prog [12]instr) bool {
		// Reference simulation in plain Go.
		var ref [16]uint64
		for i, v := range seedRegs {
			ref[i] = uint64(v)
		}
		words := make([]uint32, 0, len(prog)+1)
		regs := ref
		for _, p := range prog {
			op := []uint32{opADD, opSUB, opXOR, opMUL}[p.Op%4]
			ra, rb, rc := uint32(p.Ra%15), uint32(p.Rb%15), uint32(p.Rc%15)
			words = append(words, encALU(op, ra, rb, rc))
			var v uint64
			switch op {
			case opADD:
				v = regs[ra] + regs[rb]
			case opSUB:
				v = regs[ra] - regs[rb]
			case opXOR:
				v = regs[ra] ^ regs[rb]
			case opMUL:
				v = regs[ra] * regs[rb]
			}
			regs[rc] = v
		}
		words = append(words, encALU(opHLT, 15, 0, 0))
		for bs, s := range sims {
			m := loadProgram(spec, words)
			r := m.MustSpace("r")
			for i, v := range seedRegs {
				r.Vals[i] = uint64(v)
			}
			s.NewExec(m).Run(uint64(len(words) + 2))
			for i := 0; i < 15; i++ {
				if r.Vals[i] != regs[i] {
					t.Logf("%s: r%d = %d, want %d", bs, i, r.Vals[i], regs[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Rotating-interface validation (§V-D): each instruction uses a different
// interface than the previous one, over the same machine.
func TestRotatingInterfaceValidation(t *testing.T) {
	spec := toySpec(t)
	var sims []*Sim
	for _, bs := range []string{"one_all", "one_min", "one_decode", "step_all", "one_all_spec"} {
		sims = append(sims, synth(t, bs, Options{}))
	}
	m := loadProgram(spec, aluProgram())
	initALU(m)
	execs := make([]*Exec, len(sims))
	for i, s := range sims {
		execs[i] = s.NewExec(m)
	}
	var rec Record
	for i := 0; !m.Halted && i < 100; i++ {
		x := execs[i%len(execs)]
		x.M.JournalOn = x.sim.BS.Spec
		if len(x.sim.BS.Entrypoints) > 1 {
			x.ExecOneStepwise(&rec)
		} else {
			x.ExecOne(&rec)
		}
	}
	checkALU(t, m, "rotating")
}

func TestTranslationCacheCap(t *testing.T) {
	// A 2-slot direct-map table: storage is bounded by construction, and
	// the program's PCs contend for slots, so correctness must survive
	// conflict evictions (the shared cache absorbs the re-resolutions).
	s := synth(t, "one_min", Options{CacheCap: 2})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	x.Run(100)
	checkALU(t, m, "tiny-cache")
	if n := len(x.utab.slots); n > 2 {
		t.Errorf("cache grew past cap: %d slots", n)
	}
	st := x.Stats()
	if st.UnitL1Conflicts == 0 {
		t.Error("no conflict evictions in a 2-slot table over a larger program")
	}
	// Every lookup must still resolve: hits + misses covers every retired
	// instruction plus the halting instruction.
	lookups := st.UnitL1Hits + st.UnitL1Conflicts + st.UnitTranslations + st.UnitSharedHits
	if lookups == 0 {
		t.Error("stats recorded no lookups")
	}
}

func TestRunStopsAtBudget(t *testing.T) {
	// Infinite loop: BEQ r15 always taken, jumping to itself.
	s := synth(t, "block_min", Options{})
	m := loadProgram(s.Spec, []uint32{encBR(opBEQ, 15, -1)})
	n := s.NewExec(m).Run(1000)
	if m.Halted {
		t.Error("infinite loop halted")
	}
	if n < 1000 {
		t.Errorf("executed %d instructions, want >= 1000", n)
	}
}

func TestEmitSpecializedShowsSpecialization(t *testing.T) {
	sMin := synth(t, "one_min", Options{})
	out := sMin.EmitSpecialized("BEQ")
	if !strings.Contains(out, "// dead (hidden): branch_taken") {
		t.Errorf("min-detail emit should mark branch_taken dead:\n%s", out)
	}
	if strings.Contains(out, "f_branch_taken =") {
		t.Errorf("hidden field rendered as live store:\n%s", out)
	}
	sAll := synth(t, "one_all", Options{})
	out = sAll.EmitSpecialized("BEQ")
	if !strings.Contains(out, "f_branch_taken =") {
		t.Errorf("all-detail emit should compute branch_taken:\n%s", out)
	}
	// Step buildsets emit one function per entrypoint.
	sStep := synth(t, "step_all", Options{})
	out = sStep.EmitSpecialized("ADD")
	for _, ep := range []string{"ADD_ep_fetch", "ADD_ep_execute", "ADD_ep_writeback"} {
		if !strings.Contains(out, ep) {
			t.Errorf("step emit missing %s", ep)
		}
	}
	// Emitting everything covers every instruction.
	all := sMin.EmitSpecialized("")
	for _, in := range sMin.Spec.Instrs {
		if !strings.Contains(all, "instruction "+in.Name+" ") {
			t.Errorf("emit-all missing %s", in.Name)
		}
	}
}

// Timing-directed pipelines keep several instructions in flight: the Step
// interface must support interleaving calls for different instructions,
// with all per-instruction state carried in the records.
func TestStepInterfaceInterleavedInstructions(t *testing.T) {
	s := synth(t, "step_all", Options{})
	m := loadProgram(s.Spec, aluProgram())
	initALU(m)
	x := s.NewExec(m)
	nEp := len(s.BS.Entrypoints)

	// A 2-deep software pipeline: instruction k enters ep e only after
	// instruction k+1 has entered ep e-2 (skewed interleave). PCs are
	// provided by this driver in program order.
	recs := make([]Record, 5)
	stage := make([]int, 5) // next ep per instruction
	pcs := []uint64{codeBase, codeBase + 4, codeBase + 8, codeBase + 12, codeBase + 16}
	for i := range recs {
		recs[i].PC = pcs[i]
	}
	// Entry points: 0 fetch, 1 decode, 2 opread, 3 execute, 4 memory,
	// 5 writeback, 6 exception. A real timing-directed model either stalls
	// a dependent operand read until the producer's writeback or injects
	// bypassed values through the record; this driver stalls.
	const epOpread, epWriteback = 2, 5
	done := 0
	for done < len(recs) {
		progressed := false
		for k := 0; k < len(recs); k++ {
			if stage[k] >= nEp {
				continue
			}
			if k > 0 && stage[k] >= stage[k-1] {
				continue // program order per stage
			}
			if k > 0 && stage[k] == epOpread && stage[k-1] <= epWriteback {
				continue // RAW hazard: wait for the producer's writeback
			}
			x.StepCall(stage[k], &recs[k])
			stage[k]++
			progressed = true
			if stage[k] == nEp {
				done++
			}
		}
		if !progressed {
			t.Fatal("interleave deadlocked")
		}
	}
	checkALU(t, m, "interleaved-step")
}

// Two hardware contexts share one memory: a spin lock released by context
// 0 must be observed by context 1, and the data published before the
// release must be visible after acquisition (the paper's §II-B
// thread-interaction scenario, here at the engine level).
func TestSharedMemoryContexts(t *testing.T) {
	s := synth(t, "one_min", Options{})
	shared := mach.NewMemory(mach.LittleEndian)
	defs := s.Spec.SpaceDefs()
	m0 := mach.NewMachine(shared, defs)
	m1 := mach.NewMachine(shared, defs)
	m1.CtxID = 1

	const lockAddr, dataAddr = dataBase, dataBase + 8
	// ctx0: r1=42; store data; r2=1; store lock; halt.
	prog0 := []uint32{
		encALU(opADD, 15, 15, 1), // r1 = 0
		encALU(opADD, 1, 15, 1),  // placeholder (keeps pcs aligned)
		encMEM(opSTW, 3, 4, 8),   // mem[r4+8] = r3 (data=42)
		encMEM(opSTW, 5, 4, 0),   // mem[r4+0] = r5 (lock=1)
		encALU(opHLT, 15, 0, 0),
	}
	// ctx1: spin: load lock; beq -> spin; load data; halt.
	prog1 := []uint32{
		encMEM(opLDW, 6, 4, 0), // r6 = lock
		encBR(opBEQ, 6, -2),    // if r6 == 0 goto spin
		encMEM(opLDW, 7, 4, 8), // r7 = data
		encALU(opHLT, 15, 0, 0),
	}
	base1 := uint64(codeBase + 0x1000)
	for i, w := range prog0 {
		shared.Store(codeBase+uint64(i)*4, uint64(w), 4)
	}
	for i, w := range prog1 {
		shared.Store(base1+uint64(i)*4, uint64(w), 4)
	}
	m0.PC, m1.PC = codeBase, base1
	r0, r1 := m0.MustSpace("r"), m1.MustSpace("r")
	r0.Vals[3], r0.Vals[4], r0.Vals[5] = 42, lockAddr, 1
	r1.Vals[4] = lockAddr

	x0, x1 := s.NewExec(m0), s.NewExec(m1)
	var rec Record
	// Interleave: ctx1 first (so it demonstrably spins), then round-robin.
	for i := 0; (!m0.Halted || !m1.Halted) && i < 1000; i++ {
		if !m1.Halted {
			x1.ExecOne(&rec)
		}
		if !m0.Halted {
			x0.ExecOne(&rec)
		}
	}
	if !m0.Halted || !m1.Halted {
		t.Fatal("contexts did not both halt")
	}
	if got := r1.Vals[7]; got != 42 {
		t.Errorf("ctx1 observed data = %d before release", got)
	}
	if m1.Instret <= 4 {
		t.Errorf("ctx1 should have spun at least once (instret=%d)", m1.Instret)
	}
}
