package core

import "singlespec/internal/lis"

// This file decides which hidden fields the emitter may demote from
// package-level frame storage to per-function locals in generated runner
// code ("cross-block field elimination"): a hidden field only ever lives
// inside one interface call, so materializing it in the runner's global
// state buys nothing and costs a memory round-trip per instruction.
//
// The demotion is sound when no emitted function can observe a value the
// field held before the call began:
//
//   - Step interfaces (multiple entrypoints) clear every hidden field at
//     each entrypoint boundary (core.Exec.importRec; gClearHidden in the
//     runner), so a zero-initialized local is exactly the cleared global.
//     Every hidden field is localizable.
//
//   - One/Block interfaces keep the frame across instructions
//     (read-before-write staleness included), so a hidden field is
//     localizable only if every live read of it in every emitted function
//     is preceded by a definite write on all paths reaching that read.
//
// The path analysis mirrors the emitter's control flow: statements in
// non-exception segments only execute after complete fall-through of all
// earlier code in the call (a pending fault at a segment boundary diverts
// to the exception segment or out of the call, never into a later
// segment's body), so definite writes accumulate linearly with IfStmt
// branches merged by intersection. The exception segment is entered by
// fault diversion from any earlier boundary, so no prior write is definite
// there; segments after it inherit only its own definite writes. The
// analysis is conservative against the emitter's constant folding in both
// directions: reads in a folded-away branch are still counted (they can
// only demote a field) and writes in a folded-to branch are not promoted
// to definite (intersection merge).
func (s *Sim) computeLocalFields() map[string]bool {
	cand := make(map[string]bool)
	for _, f := range s.Spec.Fields {
		if !f.Builtin && !s.BS.Visible(f) {
			cand[f.Name] = true
		}
	}
	if len(cand) == 0 || len(s.BS.Entrypoints) > 1 {
		return cand
	}

	readF := func(f *lis.Field, w map[string]bool) {
		if !f.Builtin && cand[f.Name] && !w[f.Name] {
			delete(cand, f.Name) // possibly-stale read: keep the global
		}
	}
	writeF := func(f *lis.Field, w map[string]bool) {
		if !f.Builtin {
			w[f.Name] = true
		}
	}

	analyze := func(in *lis.Instr, ops []iop, li *liveInfo) {
		e := &emitter{sim: s, in: in, li: li}
		segs := e.buildSegs(ops)

		var scanExpr func(x lis.Expr, w map[string]bool)
		scanExpr = func(x lis.Expr, w map[string]bool) {
			switch x := x.(type) {
			case *lis.IdentExpr:
				if x.Ref == lis.RefField {
					readF(x.Sym.(*lis.Field), w)
				}
			case *lis.UnaryExpr:
				scanExpr(x.X, w)
			case *lis.BinaryExpr:
				scanExpr(x.L, w)
				scanExpr(x.R, w)
			case *lis.CondExpr:
				scanExpr(x.C, w)
				scanExpr(x.A, w)
				scanExpr(x.B, w)
			case *lis.CallExpr:
				for _, a := range x.Args {
					scanExpr(a, w)
				}
			}
		}
		var scanStmt func(st lis.Stmt, w map[string]bool)
		scanStmt = func(st lis.Stmt, w map[string]bool) {
			switch st := st.(type) {
			case *lis.Block:
				for _, s2 := range st.Stmts {
					scanStmt(s2, w)
				}
			case *lis.AssignStmt:
				if !li.stmt[st] {
					return
				}
				scanExpr(st.RHS, w)
				if st.Ref == lis.RefField {
					writeF(st.Sym.(*lis.Field), w)
				}
			case *lis.LetStmt:
				if !li.stmt[st] {
					return
				}
				scanExpr(st.RHS, w)
			case *lis.IfStmt:
				if !li.stmt[st] {
					return
				}
				scanExpr(st.Cond, w)
				wt := copyStrSet(w)
				for _, s2 := range st.Then.Stmts {
					scanStmt(s2, wt)
				}
				we := copyStrSet(w)
				if st.Else != nil && li.stmt[st.Else] {
					scanStmt(st.Else, we)
				}
				for k := range wt {
					if we[k] {
						w[k] = true
					}
				}
			case *lis.CallStmt:
				for _, a := range st.Args {
					scanExpr(a, w)
				}
			}
		}

		w := make(map[string]bool)
		for _, sg := range segs {
			// Mirror emitUnitFns: only segments belonging to the (single)
			// entrypoint produce code.
			if s.epOf[sg.step] != 0 {
				continue
			}
			if sg.exc {
				w = make(map[string]bool)
			}
			for _, oi := range sg.ops {
				op := ops[oi]
				switch op.kind {
				case opExtract:
					writeF(op.bind.Op.IdxField, w)
				case opRead:
					if op.bind.IdxEnc != nil {
						readF(op.bind.Op.IdxField, w)
					}
					writeF(op.bind.Op.Value, w)
				case opWrite:
					if op.bind.IdxEnc != nil {
						readF(op.bind.Op.IdxField, w)
					}
					readF(op.bind.Op.Value, w)
				case opAction:
					for _, s2 := range op.act.Body.Stmts {
						scanStmt(s2, w)
					}
				}
			}
		}
	}

	for _, in := range s.Spec.Instrs {
		ops := buildOps(s.Spec, in)
		li := analyzeLiveness(s.BS, ops, false)
		if s.Opts.NoDCE {
			li = liveAll(ops)
		}
		analyze(in, ops, li)
	}
	// The pre-decode fault unit is emitted with everything live.
	var fops []iop
	for st := s.Spec.DecodeStep; st < len(s.Spec.Steps); st++ {
		for _, a := range s.Spec.AllActions[st] {
			fops = append(fops, iop{kind: opAction, step: st, act: a})
		}
	}
	analyze(nil, fops, liveAll(fops))
	return cand
}

func copyStrSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
