package core

import (
	"fmt"

	"singlespec/internal/lis"
)

// An iop is one unit of an instruction's execution: a generated operand
// decode/read/write or a user action body. The planner lays out each
// instruction as an ordered iop list (grouped by step) and then runs
// liveness analysis over it.
type opKind int

const (
	opExtract opKind = iota // idx_field = encoding bits (operand decode)
	opRead                  // value_field = space[idx]
	opWrite                 // space[idx] = value_field (architectural write)
	opAction                // user action body
)

type iop struct {
	kind opKind
	step int
	bind *lis.OperandBinding
	act  *lis.Action
}

// buildOps lays out the execution order of one instruction: for each step
// in spec order — generated operand decodes (at the decode step), generated
// reads, user actions, then generated writes.
func buildOps(spec *lis.Spec, in *lis.Instr) []iop {
	var ops []iop
	// Steps before the decode step are engine-level (ALL actions only) and
	// are handled by the simulator's pre-decode sequence.
	for s := spec.DecodeStep; s < len(spec.Steps); s++ {
		if s == spec.DecodeStep {
			for _, b := range in.Operands {
				ops = append(ops, iop{kind: opExtract, step: s, bind: b})
			}
		}
		for _, b := range in.Operands {
			if !b.Op.IsWrite && b.Op.AccessStep == s {
				ops = append(ops, iop{kind: opRead, step: s, bind: b})
			}
		}
		for _, act := range in.StepActions[s] {
			ops = append(ops, iop{kind: opAction, step: s, act: act})
		}
		for _, b := range in.Operands {
			if b.Op.IsWrite && b.Op.AccessStep == s {
				ops = append(ops, iop{kind: opWrite, step: s, bind: b})
			}
		}
	}
	return ops
}

// Builtin fields that action code may assign and that are always live
// (published in the record header or consumed by the engine).
var writableBuiltins = map[string]bool{
	lis.FieldNextPC: true, lis.FieldFault: true,
	lis.FieldNullify: true, lis.FieldPhysPC: true,
}

// liveInfo records the result of liveness analysis for one (instruction,
// buildset) pair: which statements and iops must be compiled. Statement
// bodies are shared between instructions (class actions), so liveness is a
// side table rather than an AST annotation.
type liveInfo struct {
	stmt map[lis.Stmt]bool
	op   []bool
}

// analyzeLiveness runs backward liveness/DCE over an instruction's iops.
// A computation is kept iff it feeds an architectural effect, a visible
// (published) field, an engine control field, or a side-effecting builtin.
// This is the mechanism by which hiding a field removes its computation
// (the paper's "dead code which can be optimized away", §IV-A).
// translated controls whether operand reads/writes take their register
// index from the decoded index field's storage (dynamic mode) or from a
// compile-time constant (translated mode, where decode is hoisted).
func analyzeLiveness(bs *lis.Buildset, ops []iop, translated bool) *liveInfo {
	li := &liveInfo{stmt: make(map[lis.Stmt]bool), op: make([]bool, len(ops))}
	live := make(map[any]bool)
	needed := func(f *lis.Field) bool {
		if f.Builtin {
			return true // header fields are always published
		}
		return bs.Visible(f) || live[f]
	}
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		switch op.kind {
		case opWrite:
			li.op[i] = true
			live[op.bind.Op.Value] = true
			if op.bind.IdxEnc != nil && !translated {
				live[op.bind.Op.IdxField] = true
			}
		case opRead:
			if needed(op.bind.Op.Value) {
				li.op[i] = true
				delete(live, op.bind.Op.Value)
				if op.bind.IdxEnc != nil && !translated {
					live[op.bind.Op.IdxField] = true
				}
			}
		case opExtract:
			f := op.bind.Op.IdxField
			if bs.Visible(f) || live[f] {
				li.op[i] = true
				delete(live, f)
			}
		case opAction:
			if blockLive := liveBlock(op.act.Body, live, bs, li); blockLive {
				li.op[i] = true
			}
		}
	}
	return li
}

// liveBlock analyzes a statement block backward, mutating live in place and
// marking live statements in li. It reports whether any statement in the
// block is live.
func liveBlock(b *lis.Block, live map[any]bool, bs *lis.Buildset, li *liveInfo) bool {
	any := false
	for i := len(b.Stmts) - 1; i >= 0; i-- {
		if liveStmt(b.Stmts[i], live, bs, li) {
			any = true
		}
	}
	if any {
		li.stmt[b] = true
	}
	return any
}

func liveStmt(st lis.Stmt, live map[any]bool, bs *lis.Buildset, li *liveInfo) bool {
	switch st := st.(type) {
	case *lis.Block:
		return liveBlock(st, live, bs, li)
	case *lis.AssignStmt:
		isLive := exprHasEffect(st.RHS)
		switch st.Ref {
		case lis.RefField:
			f := st.Sym.(*lis.Field)
			if f.Builtin {
				isLive = true // next_pc / fault / nullify / phys_pc
			} else if bs.Visible(f) || live[f] {
				isLive = true
			}
			if isLive {
				delete(live, f)
			}
		case lis.RefLocal:
			if live[st.Sym.(*lis.Local)] {
				isLive = true
				delete(live, st.Sym.(*lis.Local))
			}
		}
		if isLive {
			addUses(st.RHS, live)
			li.stmt[st] = true
		}
		return isLive
	case *lis.LetStmt:
		isLive := live[st.Local] || exprHasEffect(st.RHS)
		if isLive {
			delete(live, st.Local)
			addUses(st.RHS, live)
			li.stmt[st] = true
		}
		return isLive
	case *lis.IfStmt:
		thenLive := liveBranch(st.Then, live, bs, li)
		var elseLive map[any]bool
		elseAny := false
		if st.Else != nil {
			elseLive = copySet(live)
			elseAny = liveStmt(st.Else, elseLive, bs, li)
		}
		anyInner := li.stmt[st.Then] || elseAny
		if !anyInner && !exprHasEffect(st.Cond) {
			return false
		}
		// Merge branch live-in sets (conditional kills do not kill).
		for k := range thenLive {
			live[k] = true
		}
		for k := range elseLive {
			live[k] = true
		}
		addUses(st.Cond, live)
		li.stmt[st] = true
		return true
	case *lis.CallStmt:
		// store*/syscall/halt: always live.
		for _, a := range st.Args {
			addUses(a, live)
		}
		li.stmt[st] = true
		return true
	}
	return false
}

// liveBranch analyzes a branch body on a copy of the live set and returns
// the branch's live-in set.
func liveBranch(b *lis.Block, live map[any]bool, bs *lis.Buildset, li *liveInfo) map[any]bool {
	branch := copySet(live)
	liveBlock(b, branch, bs, li)
	return branch
}

func copySet(s map[any]bool) map[any]bool {
	out := make(map[any]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func addUses(e lis.Expr, live map[any]bool) {
	switch e := e.(type) {
	case *lis.IdentExpr:
		switch e.Ref {
		case lis.RefField:
			if f := e.Sym.(*lis.Field); !f.Builtin {
				live[f] = true
			}
		case lis.RefLocal:
			live[e.Sym.(*lis.Local)] = true
		}
	case *lis.UnaryExpr:
		addUses(e.X, live)
	case *lis.BinaryExpr:
		addUses(e.L, live)
		addUses(e.R, live)
	case *lis.CondExpr:
		addUses(e.C, live)
		addUses(e.A, live)
		addUses(e.B, live)
	case *lis.CallExpr:
		for _, a := range e.Args {
			addUses(a, live)
		}
	}
}

// exprHasEffect reports whether evaluating e has a side effect (memory
// loads may fault, so dead assignments containing them are kept).
func exprHasEffect(e lis.Expr) bool {
	switch e := e.(type) {
	case *lis.UnaryExpr:
		return exprHasEffect(e.X)
	case *lis.BinaryExpr:
		return exprHasEffect(e.L) || exprHasEffect(e.R)
	case *lis.CondExpr:
		return exprHasEffect(e.C) || exprHasEffect(e.A) || exprHasEffect(e.B)
	case *lis.CallExpr:
		if e.Builtin != nil && e.Builtin.Kind == lis.BuiltinLoad {
			return true
		}
		for _, a := range e.Args {
			if exprHasEffect(a) {
				return true
			}
		}
	}
	return false
}

// checkInterface validates one instruction's dataflow against a buildset:
// a hidden field written in one entrypoint and read in a later one is an
// error (the paper's classic interface bug, §IV-B step 4); a field read
// before any write in the same instruction earns a warning. Liveness must
// already have run: dead statements are not checked.
func checkInterface(spec *lis.Spec, bs *lis.Buildset, in *lis.Instr, ops []iop, li *liveInfo) (errs, warns []string) {
	// Map each step to its entrypoint ordinal.
	epOf := make([]int, len(spec.Steps))
	for i := range epOf {
		epOf[i] = -1
	}
	for ei, ep := range bs.Entrypoints {
		for _, s := range ep.Steps {
			epOf[s] = ei
		}
	}
	writtenEp := make(map[*lis.Field]int) // field -> ep of first write
	writtenNow := make(map[any]bool)      // written so far in current ep (optimistic)
	curEp := -2
	reported := make(map[string]bool)

	checkRead := func(f *lis.Field, ep int) {
		if f.Builtin || writtenNow[f] {
			return
		}
		key := in.Name + "/" + f.Name
		if reported[key] {
			return
		}
		if wep, ok := writtenEp[f]; ok && wep != ep {
			if !bs.Visible(f) && !bs.Unchecked {
				reported[key] = true
				errs = append(errs, fmt.Sprintf(
					"buildset %s: instruction %s: hidden field '%s' is written in entrypoint '%s' and read in '%s'; it must be visible to cross the interface",
					bs.Name, in.Name, f.Name, bs.Entrypoints[wep].Name, bs.Entrypoints[ep].Name))
			}
			return
		}
		if _, ok := writtenEp[f]; !ok {
			reported[key] = true
			warns = append(warns, fmt.Sprintf(
				"buildset %s: instruction %s: field '%s' may be read before it is written",
				bs.Name, in.Name, f.Name))
		}
	}

	var scanReads func(e lis.Expr, ep int)
	scanReads = func(e lis.Expr, ep int) {
		switch e := e.(type) {
		case *lis.IdentExpr:
			if e.Ref == lis.RefField {
				checkRead(e.Sym.(*lis.Field), ep)
			}
		case *lis.UnaryExpr:
			scanReads(e.X, ep)
		case *lis.BinaryExpr:
			scanReads(e.L, ep)
			scanReads(e.R, ep)
		case *lis.CondExpr:
			scanReads(e.C, ep)
			scanReads(e.A, ep)
			scanReads(e.B, ep)
		case *lis.CallExpr:
			for _, a := range e.Args {
				scanReads(a, ep)
			}
		}
	}
	noteWrite := func(f *lis.Field, ep int) {
		writtenNow[f] = true
		if _, ok := writtenEp[f]; !ok {
			writtenEp[f] = ep
		}
	}
	var scanStmt func(st lis.Stmt, ep int)
	scanStmt = func(st lis.Stmt, ep int) {
		if !li.stmt[st] {
			return
		}
		switch st := st.(type) {
		case *lis.Block:
			for _, s := range st.Stmts {
				scanStmt(s, ep)
			}
		case *lis.AssignStmt:
			scanReads(st.RHS, ep)
			if st.Ref == lis.RefField {
				noteWrite(st.Sym.(*lis.Field), ep)
			}
		case *lis.LetStmt:
			scanReads(st.RHS, ep)
		case *lis.IfStmt:
			scanReads(st.Cond, ep)
			scanStmt(st.Then, ep)
			if st.Else != nil {
				scanStmt(st.Else, ep)
			}
		case *lis.CallStmt:
			for _, a := range st.Args {
				scanReads(a, ep)
			}
		}
	}

	for i, op := range ops {
		if !li.op[i] {
			continue
		}
		ep := epOf[op.step]
		if ep != curEp {
			// New entrypoint: private (frame) storage does not survive.
			writtenNow = make(map[any]bool)
			for f := range writtenEp {
				if bs.Visible(f) {
					writtenNow[f] = true // imported from the record
				}
			}
			curEp = ep
		}
		switch op.kind {
		case opExtract:
			noteWrite(op.bind.Op.IdxField, ep)
		case opRead:
			if op.bind.IdxEnc != nil {
				checkRead(op.bind.Op.IdxField, ep)
			}
			noteWrite(op.bind.Op.Value, ep)
		case opWrite:
			if op.bind.IdxEnc != nil {
				checkRead(op.bind.Op.IdxField, ep)
			}
			checkRead(op.bind.Op.Value, ep)
		case opAction:
			scanStmt(op.act.Body, ep)
		}
	}
	return errs, warns
}
