// Package core is the single-specification engine: it specializes a
// resolved LIS spec (internal/lis) for one buildset — placing fields in the
// published instruction record or in private frame storage, eliminating
// dead computation, weaving speculation support — and compiles the result
// into executable closures behind Block / One / Step interfaces.
//
// This package is the paper's contribution: "specify all the details of
// instructions once and derive the desired lower levels of detail in the
// interface from that specification."
package core

import (
	"fmt"

	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// Record is the dynamic instruction record published through the interface
// (the paper's "dynamic instruction structure", Fig. 2). The fixed header
// carries the always-visible minimal information; Vals carries the
// buildset-visible fields at slots assigned by the Layout.
type Record struct {
	Ctx       int
	PC        uint64
	PhysPC    uint64
	NextPC    uint64
	InstrBits uint32
	InstrID   uint16 // the decoded instruction (the `opcode` builtin field)
	Fault     mach.Fault
	Nullified bool // predicated-off instruction (no architectural effect)
	Vals      []uint64
}

// Field reads a visible field value by layout slot; convenience for timing
// simulators (hot paths should cache the slot and index Vals directly).
func (r *Record) Field(slot int) uint64 { return r.Vals[slot] }

// Layout assigns record slots to the fields visible in a buildset.
type Layout struct {
	slots  map[string]int
	fields []*lis.Field // slot -> field
}

// NumSlots returns the record Vals length for this layout.
func (l *Layout) NumSlots() int { return len(l.fields) }

// Slot returns the Vals index of a visible field.
func (l *Layout) Slot(name string) (int, bool) {
	s, ok := l.slots[name]
	return s, ok
}

// MustSlot is Slot but panics on invisible fields (programming error in a
// timing model).
func (l *Layout) MustSlot(name string) int {
	s, ok := l.slots[name]
	if !ok {
		panic(fmt.Sprintf("core: field %q is not visible in this buildset", name))
	}
	return s
}

// FieldNames lists the visible fields in slot order.
func (l *Layout) FieldNames() []string {
	out := make([]string, len(l.fields))
	for i, f := range l.fields {
		out[i] = f.Name
	}
	return out
}

func buildLayout(spec *lis.Spec, bs *lis.Buildset) *Layout {
	l := &Layout{slots: make(map[string]int)}
	for _, f := range spec.Fields {
		if f.Builtin {
			continue // builtins live in the record header
		}
		if bs.Visible(f) {
			l.slots[f.Name] = len(l.fields)
			l.fields = append(l.fields, f)
		}
	}
	return l
}

// Batch is the unit of the Block interface: the result of executing one
// basic block. When the buildset's informational detail is minimal the
// per-instruction records are not produced (Recs stays empty) and only the
// block-level summary is filled — this elision is a large part of the
// Block/Min speed advantage the paper reports.
type Batch struct {
	StartPC uint64
	N       int // instructions executed
	Recs    []Record
	Fault   mach.Fault
	Halted  bool
}

// Reset prepares a batch for reuse.
func (b *Batch) Reset() {
	b.N = 0
	b.Recs = b.Recs[:0]
	b.Fault = mach.FaultNone
	b.Halted = false
}
