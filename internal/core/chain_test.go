package core

import (
	"testing"

	"singlespec/internal/mach"
)

// Tests for block->block chaining: link creation and following, severing on
// self-modifying code and on FlushLocal, relinking under invalidation
// storms, and the zero-allocation guarantee of the steady-state dispatch
// and flush paths.

// chainLoopProgram decrements r9 once per iteration through two basic
// blocks — [SUB, BEQ-exit] and [BEQ-back] — so both chain edges (taken
// back-branch and not-taken fall-through) are exercised every iteration.
func chainLoopProgram() []uint32 {
	return []uint32{
		encALU(opSUB, 9, 11, 9), // @0:  r9 -= 1
		encBR(opBEQ, 9, 2),      // @4:  r9 == 0 -> @16 (exit)
		encBR(opBEQ, 15, -3),    // @8:  always -> @0
		encALU(opHLT, 15, 0, 0), // @12: never reached
		encALU(opHLT, 15, 0, 0), // @16: halt(0)
	}
}

func TestChainFollowLoop(t *testing.T) {
	const iters = 1000
	s := synth(t, "block_min", Options{})
	m := loadProgram(toySpec(t), chainLoopProgram())
	r := m.MustSpace("r")
	r.Vals[11] = 1
	r.Vals[9] = iters
	x := s.NewExec(m)
	x.Run(1 << 20)
	if !m.Halted {
		t.Fatal("loop did not halt")
	}
	if r.Vals[9] != 0 {
		t.Fatalf("r9 = %d after loop, want 0", r.Vals[9])
	}
	st := x.Stats()
	if st.BlockChainLinks < 2 {
		t.Errorf("BlockChainLinks = %d, want >= 2 (both loop edges)", st.BlockChainLinks)
	}
	// Every dispatch after the first traversal of each edge is a follow,
	// except the loop-exit retranslation at the end.
	if st.BlockChainFollows < 2*(iters-2) {
		t.Errorf("BlockChainFollows = %d, want >= %d", st.BlockChainFollows, 2*(iters-2))
	}
	t.Logf("links=%d follows=%d l1hits=%d", st.BlockChainLinks, st.BlockChainFollows, st.BlockL1Hits)
}

// pingPongFar places one single-branch block on each of two different
// 64 KiB pages, branching at each other forever.
func pingPongFar(t *testing.T) (*mach.Machine, *Sim) {
	t.Helper()
	s := synth(t, "block_min", Options{})
	m := toySpec(t).NewMachine()
	const a, b = 0x10000, 0x20000
	m.Mem.Store(a, uint64(encBR(opBEQ, 15, (b-a-4)>>2)), 4)
	m.Mem.Store(b, uint64(encBR(opBEQ, 15, -((b-a+4)>>2))), 4)
	m.PC = a
	return m, s
}

// TestChainSeveredBySMC is the self-modifying-code safety test: once block
// A chains to block B, a store to B's page must sever the link before the
// next dispatch, and the rewritten code must execute.
func TestChainSeveredBySMC(t *testing.T) {
	m, s := pingPongFar(t)
	x := s.NewExec(m)
	var batch Batch
	for i := 0; i < 6; i++ {
		if !x.ExecBlock(&batch) {
			t.Fatal("ping-pong halted early")
		}
	}
	if x.Stats().BlockChainFollows == 0 {
		t.Fatal("warmup produced no chain follows")
	}
	// PC is back at A. Rewrite B's branch as a halt: the store bumps B's
	// page generation and the code-store epoch.
	m.Mem.Store(0x20000, uint64(encALU(opHLT, 15, 0, 0)), 4)
	if !x.ExecBlock(&batch) { // A executes (its page is untouched), jumps to B
		t.Fatal("block A halted unexpectedly")
	}
	follows := x.Stats().BlockChainFollows
	ok := x.ExecBlock(&batch) // must re-translate B, not follow the stale link
	if got := x.Stats().BlockChainFollows; got != follows {
		t.Fatalf("dispatch after code store followed a chain link (follows %d -> %d)", follows, got)
	}
	if ok || !m.Halted {
		t.Fatal("rewritten instruction did not execute: store to a chained block's page was not honoured")
	}
	if batch.Fault != mach.FaultHalt {
		t.Fatalf("batch fault = %v, want FaultHalt", batch.Fault)
	}
}

// TestChainSeveredByFlush: FlushLocal must sever every chain link (the
// table stamp moves), and chaining must resume once dispatch re-warms.
func TestChainSeveredByFlush(t *testing.T) {
	m, s := pingPongFar(t)
	x := s.NewExec(m)
	var batch Batch
	for i := 0; i < 6; i++ {
		x.ExecBlock(&batch)
	}
	f0 := x.Stats().BlockChainFollows
	if f0 == 0 {
		t.Fatal("warmup produced no chain follows")
	}
	x.FlushLocal()
	x.ExecBlock(&batch)
	if got := x.Stats().BlockChainFollows; got != f0 {
		t.Fatalf("first dispatch after flush followed a link (follows %d -> %d)", f0, got)
	}
	for i := 0; i < 6; i++ {
		x.ExecBlock(&batch)
	}
	if got := x.Stats().BlockChainFollows; got == f0 {
		t.Fatal("chaining did not resume after flush")
	}
}

// TestChainRelinkStorm: a code-page store between every two blocks severs
// each link before it can be followed. Execution must stay correct, links
// must keep being recreated, and none may be followed.
func TestChainRelinkStorm(t *testing.T) {
	m, s := pingPongFar(t)
	x := s.NewExec(m)
	var batch Batch
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if !x.ExecBlock(&batch) {
			t.Fatal("halted early")
		}
		// Store to A's code page (away from the instruction): bits are
		// unchanged, so translation revalidates, but every epoch-guarded
		// chain link dies.
		m.Mem.Store(0x10000+128, uint64(i), 4)
	}
	if m.PC != 0x10000 {
		t.Fatalf("PC = %#x after %d blocks, want %#x", m.PC, rounds, 0x10000)
	}
	st := x.Stats()
	if st.BlockChainFollows != 0 {
		t.Errorf("BlockChainFollows = %d under per-block invalidation, want 0", st.BlockChainFollows)
	}
	if st.BlockChainLinks < rounds-2 {
		t.Errorf("BlockChainLinks = %d, want >= %d (relink every round)", st.BlockChainLinks, rounds-2)
	}
}

// TestSteadyStateZeroAlloc pins the no-allocation property of the hot
// paths: warm block dispatch, warm per-instruction dispatch, and
// FlushLocal must all run without allocating.
func TestSteadyStateZeroAlloc(t *testing.T) {
	t.Run("ExecBlock", func(t *testing.T) {
		m, s := pingPongFar(t)
		x := s.NewExec(m)
		var batch Batch
		for i := 0; i < 8; i++ {
			x.ExecBlock(&batch)
		}
		if avg := testing.AllocsPerRun(100, func() {
			for i := 0; i < 16; i++ {
				x.ExecBlock(&batch)
			}
		}); avg != 0 {
			t.Errorf("warm ExecBlock allocates: %.2f allocs per 16 blocks", avg)
		}
	})
	t.Run("ExecOne", func(t *testing.T) {
		s := synth(t, "one_min", Options{})
		m := loadProgram(toySpec(t), benchBranchProgram())
		x := s.NewExec(m)
		var rec Record
		for i := 0; i < 8; i++ {
			x.ExecOne(&rec)
		}
		if avg := testing.AllocsPerRun(100, func() {
			for i := 0; i < 16; i++ {
				x.ExecOne(&rec)
			}
		}); avg != 0 {
			t.Errorf("warm ExecOne allocates: %.2f allocs per 16 instrs", avg)
		}
	})
	t.Run("FlushLocal", func(t *testing.T) {
		s := synth(t, "one_min", Options{})
		m := loadProgram(toySpec(t), benchBranchProgram())
		x := s.NewExec(m)
		x.Run(16)
		if avg := testing.AllocsPerRun(100, x.FlushLocal); avg != 0 {
			t.Errorf("FlushLocal allocates: %.2f allocs per call", avg)
		}
	})
}
