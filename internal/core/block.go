package core

import (
	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// The Block interface executes a basic block per call — the engine's
// analogue of the paper's binary-translated functional simulators. Blocks
// are decoded once, each instruction specialized for its fixed PC and
// encoding (operand decode folds to constants, the fall-through next PC is
// a constant), and cached until the code page changes.

// xblock is immutable once buildBlock returns, so — like units — blocks may
// be published in the Sim's shared cache and executed concurrently. A block
// never crosses a 64 KiB page boundary, so one page-generation (or one
// whole-block bits comparison on a shared-cache hit) validates all of it.
type xblock struct {
	startPC uint64
	units   []*unit
}

// ExecBlock executes the basic block at the machine's PC, filling batch.
// Per-instruction records are produced only when the buildset exposes
// information beyond the minimal set (or ForceRecords is set); at minimal
// detail only the block summary is produced. It reports false when the
// machine halted or faulted.
func (x *Exec) ExecBlock(batch *Batch) bool {
	batch.Reset()
	m := x.M
	pc := m.PC
	batch.StartPC = pc
	blk := x.transBlock(pc)
	if blk == nil {
		// Fetch fault or undecodable first instruction: let the dynamic
		// path raise it and publish a record if detail requires.
		rec := batch.next()
		x.execOneDynamic(rec)
		if rec.Fault == mach.FaultNone {
			batch.N++
		} else {
			batch.Fault = rec.Fault
		}
		if !x.sim.emitBlockRecords() {
			batch.Recs = batch.Recs[:0]
		}
		batch.Halted = m.Halted
		return batch.Fault == mach.FaultNone && !m.Halted
	}
	emit := x.sim.emitBlockRecords()
	for _, u := range blk.units {
		x.pc = u.pc
		x.physPC = u.physPC
		x.nextPC = u.fall
		x.bits = u.bits
		x.instrID = u.id
		x.fault = mach.FaultNone
		x.nullify = false
		x.runSegs(u, 0, int32(len(u.segs)))
		x.work += uint64(u.work)
		if emit {
			x.publish(batch.next())
		}
		if x.fault != mach.FaultNone {
			batch.Fault = x.fault
			batch.Halted = m.Halted
			return false
		}
		m.PC = x.nextPC
		m.Instret++
		batch.N++
	}
	return true
}

func (s *Sim) emitBlockRecords() bool {
	return s.Layout.NumSlots() > 0 || s.Opts.ForceRecords
}

// next returns the next record slot of the batch, reusing capacity (and
// the Vals allocations of previous uses).
func (b *Batch) next() *Record {
	if len(b.Recs) < cap(b.Recs) {
		b.Recs = b.Recs[:len(b.Recs)+1]
	} else {
		b.Recs = append(b.Recs, Record{})
	}
	return &b.Recs[len(b.Recs)-1]
}

// transBlock returns the translated block starting at pc, translating on a
// miss. nil means the first instruction cannot be fetched or decoded. Like
// transUnit, it consults the private generation-validated cache first, then
// the Sim's shared cache (validating every unit's bits against this
// machine's memory), and only then builds a fresh block.
func (x *Exec) transBlock(pc uint64) *xblock {
	if x.bcache == nil {
		x.bcache = make(map[uint64]bentry)
	}
	gen := x.M.Mem.Gen(pc)
	if e, ok := x.bcache[pc]; ok {
		if e.gen == gen {
			x.stats.BlockL1Hits++
			return e.b
		}
		x.stats.BlockL1GenEvictions++
		delete(x.bcache, pc)
	}
	blk := x.sim.shared.lookupBlock(pc)
	if blk != nil && !x.blockValid(blk) {
		x.stats.BlockSharedStale++
		blk = nil
	}
	if blk != nil {
		x.stats.BlockSharedHits++
	} else {
		blk = x.buildBlock(pc)
		if blk == nil {
			return nil
		}
		x.stats.BlockBuilds++
		x.sim.shared.insertBlock(pc, blk)
	}
	if len(x.bcache) >= x.sim.Opts.CacheCap {
		x.stats.BlockL1Flushes++
		x.bcache = make(map[uint64]bentry)
	}
	x.bcache[pc] = bentry{b: blk, gen: gen}
	return blk
}

// blockValid reports whether every instruction of a shared-cache block
// matches the bits currently in this machine's memory. Blocks are built
// from many instructions, so the single-word check transUnit uses is not
// enough: two program images can agree at the block's start and diverge
// later.
func (x *Exec) blockValid(blk *xblock) bool {
	for _, u := range blk.units {
		v, f := x.M.Mem.Load(u.pc, x.sim.Spec.InstrSize)
		if f != mach.FaultNone || uint32(v) != u.bits {
			return false
		}
	}
	return true
}

// buildBlock decodes instructions from pc until a control-transfer or
// barrier instruction, an undecodable word, a page boundary, or the block
// length limit.
func (x *Exec) buildBlock(pc uint64) *xblock {
	s := x.sim
	blk := &xblock{startPC: pc}
	cur := pc
	pageEnd := (pc | 0xffff) + 1 // 64 KiB pages (mach page size)
	for len(blk.units) < s.Opts.MaxBlockLen {
		if cur+s.instrSize > pageEnd {
			break
		}
		v, f := x.M.Mem.Load(cur, s.Spec.InstrSize)
		if f != mach.FaultNone {
			break
		}
		bits := uint32(v)
		id := s.dec.decode(bits)
		if id < 0 {
			break
		}
		in := s.Spec.Instrs[id]
		blk.units = append(blk.units, s.translate(in, cur, bits))
		cur += s.instrSize
		if in.CTI || in.Barrier {
			break
		}
	}
	if len(blk.units) == 0 {
		return nil
	}
	return blk
}

// Run drives the machine to completion (halt, fault, or the instruction
// budget) through the buildset's natural interface, returning the number
// of instructions executed. It is the convenience entry used by tools and
// tests; benchmarks drive the interfaces directly.
func (x *Exec) Run(maxInstrs uint64) uint64 {
	start := x.M.Instret
	switch {
	case x.sim.BS.Mode == lis.ModeBlock:
		var batch Batch
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecBlock(&batch) {
				break
			}
		}
	case len(x.sim.BS.Entrypoints) > 1:
		var rec Record
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecOneStepwise(&rec) {
				break
			}
		}
	default:
		var rec Record
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecOne(&rec) {
				break
			}
		}
	}
	return x.M.Instret - start
}
