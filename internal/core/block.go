package core

import (
	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// The Block interface executes a basic block per call — the engine's
// analogue of the paper's binary-translated functional simulators. Blocks
// are decoded once, each instruction specialized for its fixed PC and
// encoding (operand decode folds to constants, the fall-through next PC is
// a constant), and cached until the code page changes.

// xblock is immutable once buildBlock returns, so — like units — blocks may
// be published in the Sim's shared cache and executed concurrently. A block
// never crosses a 64 KiB page boundary, so one page-generation (or one
// whole-block bits comparison on a shared-cache hit) validates all of it.
type xblock struct {
	startPC uint64
	units   []*unit
}

// ExecBlock executes the basic block at the machine's PC, filling batch.
// Per-instruction records are produced only when the buildset exposes
// information beyond the minimal set (or ForceRecords is set); at minimal
// detail only the block summary is produced. It reports false when the
// machine halted or faulted.
//
// Dispatch is chained: after a block retires, its table slot remembers the
// observed successor (see bslot), so a stable control edge — a loop
// back-branch, a fall-through, a direct call — resolves the next block with
// one epoch compare instead of a table probe plus page-generation walk.
// Links sever automatically when the code-store epoch moves (any store to a
// code page, including rollback of speculative stores) and when FlushLocal
// bumps the table stamp.
func (x *Exec) ExecBlock(batch *Batch) bool {
	batch.Reset()
	m := x.M
	pc := m.PC
	batch.StartPC = pc
	var blk *xblock
	var slot int32
	t := &x.btab
	if last := x.lastB; last >= 0 {
		ls := &t.slots[last]
		if ls.stamp == t.stamp && ls.next != nil && ls.nextPC == pc &&
			ls.nextEpoch == m.Mem.CodeGen() {
			blk = ls.next
			slot = int32(ls.nextSlot)
			x.stats.BlockChainFollows++
		}
	}
	if blk == nil {
		blk, slot = x.transBlock(pc)
		if blk == nil {
			// Fetch fault or undecodable first instruction: let the dynamic
			// path raise it and publish a record if detail requires.
			x.lastB = -1
			rec := batch.next()
			x.execOneDynamic(rec)
			if rec.Fault == mach.FaultNone {
				batch.N++
			} else {
				batch.Fault = rec.Fault
			}
			if !x.sim.emitRecs {
				batch.Recs = batch.Recs[:0]
			}
			batch.Halted = m.Halted
			return batch.Fault == mach.FaultNone && !m.Halted
		}
		// Link the previous block's slot to this one. The link records the
		// epoch blk was just validated under; a follow re-checks it, so a
		// link can never outlive the code it points at. A stale slot (its
		// block was evicted since) still gets the link: follow validity is
		// self-contained in (nextPC, nextEpoch, stamp), independent of
		// which block the slot currently caches.
		if last := x.lastB; last >= 0 {
			ls := &t.slots[last]
			if ls.stamp == t.stamp {
				ls.next = blk
				ls.nextPC = pc
				ls.nextEpoch = m.Mem.CodeGen()
				ls.nextSlot = uint32(slot)
				x.stats.BlockChainLinks++
			}
		}
	}
	emit := x.sim.emitRecs
	// The architectural PC and retired-instruction counter are updated once
	// at block exit (nothing observes them mid-block: instruction semantics
	// read the working fields, and budget/watchdog checks run between
	// ExecBlock calls); n counts retired instructions locally.
	n := 0
	for _, u := range blk.units {
		x.pc = u.pc
		x.physPC = u.physPC
		x.nextPC = u.fall
		x.bits = u.bits
		x.instrID = u.id
		x.fault = mach.FaultNone
		x.nullify = false
		// Inline segment dispatch: fault and nullify were just cleared, so
		// the runSegs entry checks cannot fire, and the common path is one
		// closure call plus one combined check per segment. A fault or
		// nullification mid-unit (rare) resumes through runSegs, which
		// handles exception diversion exactly as before.
		segs := u.segs
		for i := range segs {
			segs[i].run(x)
			if x.fault != mach.FaultNone || x.nullify {
				x.runSegs(u, int32(i+1), int32(len(segs)))
				break
			}
		}
		x.work += uint64(u.work)
		if emit {
			x.publish(batch.next())
		}
		if x.fault != mach.FaultNone {
			batch.Fault = x.fault
			batch.Halted = m.Halted
			batch.N = n
			// Faulting (halting) instructions do not retire: the PC stays
			// at the faulting instruction.
			m.PC = u.pc
			m.Instret += uint64(n)
			x.lastB = -1
			return false
		}
		n++
	}
	m.PC = x.nextPC
	m.Instret += uint64(n)
	batch.N = n
	x.lastB = slot
	return true
}

// next returns the next record slot of the batch, reusing capacity (and
// the Vals allocations of previous uses).
func (b *Batch) next() *Record {
	if len(b.Recs) < cap(b.Recs) {
		b.Recs = b.Recs[:len(b.Recs)+1]
	} else {
		b.Recs = append(b.Recs, Record{})
	}
	return &b.Recs[len(b.Recs)-1]
}

// transBlock returns the translated block starting at pc (and the table
// slot now caching it), translating on a miss. A nil block means the first
// instruction cannot be fetched or decoded. Like transUnit, it consults the
// private direct-map table first (epoch compare, then page generation),
// then the Sim's shared cache (validating every unit's bits against this
// machine's memory), and only then builds a fresh block.
func (x *Exec) transBlock(pc uint64) (*xblock, int32) {
	t := &x.btab
	if t.slots == nil {
		t.init(x.sim.Opts.CacheCap)
	}
	mem := x.M.Mem
	i := t.idx(pc)
	s := &t.slots[i]
	if s.stamp == t.stamp && s.pc == pc {
		cg := mem.CodeGen()
		if s.epoch == cg {
			x.stats.BlockL1Hits++
			return s.b, int32(i)
		}
		// The epoch moved, but a block never crosses a page boundary, so
		// an unchanged generation of its one page revalidates all of it.
		if s.gen == mem.Gen(pc) {
			s.epoch = cg
			x.stats.BlockL1Hits++
			return s.b, int32(i)
		}
		x.stats.BlockL1GenEvictions++
	} else if s.stamp == t.stamp && s.b != nil {
		x.stats.BlockL1Conflicts++
	}
	blk := x.sim.shared.lookupBlock(pc)
	if blk != nil && !x.blockValid(blk) {
		x.stats.BlockSharedStale++
		blk = nil
	}
	if blk != nil {
		x.stats.BlockSharedHits++
	} else {
		blk = x.buildBlock(pc)
		if blk == nil {
			return nil, -1
		}
		x.stats.BlockBuilds++
		x.sim.shared.insertBlock(pc, blk)
	}
	// Mark the block's (single) page as code before capturing generation
	// and epoch: every later store to it must advance both.
	mem.MarkCode(pc)
	*s = bslot{pc: pc, gen: mem.Gen(pc), epoch: mem.CodeGen(), stamp: t.stamp, b: blk}
	return blk, int32(i)
}

// blockValid reports whether every instruction of a shared-cache block
// matches the bits currently in this machine's memory. Blocks are built
// from many instructions, so the single-word check transUnit uses is not
// enough: two program images can agree at the block's start and diverge
// later.
func (x *Exec) blockValid(blk *xblock) bool {
	for _, u := range blk.units {
		v, f := x.M.Mem.Load(u.pc, x.sim.Spec.InstrSize)
		if f != mach.FaultNone || uint32(v) != u.bits {
			return false
		}
	}
	return true
}

// buildBlock decodes instructions from pc until a control-transfer or
// barrier instruction, an undecodable word, a page boundary, or the block
// length limit.
func (x *Exec) buildBlock(pc uint64) *xblock {
	s := x.sim
	blk := &xblock{startPC: pc}
	cur := pc
	pageEnd := (pc | 0xffff) + 1 // 64 KiB pages (mach page size)
	for len(blk.units) < s.Opts.MaxBlockLen {
		if cur+s.instrSize > pageEnd {
			break
		}
		v, f := x.M.Mem.Load(cur, s.Spec.InstrSize)
		if f != mach.FaultNone {
			break
		}
		bits := uint32(v)
		id := s.dec.decode(bits)
		if id < 0 {
			break
		}
		in := s.Spec.Instrs[id]
		blk.units = append(blk.units, s.translate(in, cur, bits))
		cur += s.instrSize
		if in.CTI || in.Barrier {
			break
		}
	}
	if len(blk.units) == 0 {
		return nil
	}
	return blk
}

// Run drives the machine to completion (halt, fault, or the instruction
// budget) through the buildset's natural interface, returning the number
// of instructions executed. It is the convenience entry used by tools and
// tests; benchmarks drive the interfaces directly.
func (x *Exec) Run(maxInstrs uint64) uint64 {
	start := x.M.Instret
	switch {
	case x.sim.BS.Mode == lis.ModeBlock:
		var batch Batch
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecBlock(&batch) {
				break
			}
		}
	case len(x.sim.BS.Entrypoints) > 1:
		var rec Record
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecOneStepwise(&rec) {
				break
			}
		}
	default:
		var rec Record
		for !x.M.Halted && x.M.Instret-start < maxInstrs {
			if !x.ExecOne(&rec) {
				break
			}
		}
	}
	return x.M.Instret - start
}
