package core

// First-level translation caches: fixed-size, open-addressed, direct-mapped
// tables private to one Exec. They replace the earlier map[uint64]-based
// caches on the dispatch hot path:
//
//   - A lookup is one masked multiply (the same Fibonacci hash the shared
//     cache shards by) and one slot compare — no map header, no bucket
//     chain, no hashing through runtime interfaces.
//   - The table never grows. A PC whose slot is occupied by another PC
//     evicts it (direct-mapped conflict), so storage is bounded by
//     construction at the power-of-two rounding of Options.CacheCap.
//   - FlushLocal is O(1) and allocation-free: every slot carries the stamp
//     of the flush generation it was written under, and bumping the table
//     stamp invalidates all of them at once. The old implementation
//     reallocated fresh maps, which both allocated and left the old map for
//     the GC to sweep.
//
// Slot validity is two-tier. Each slot records the code-store epoch
// (mach.Memory.CodeGen) and the page generation under which its product was
// last validated. On a hit the epoch is compared first: an unchanged epoch
// proves no store has touched ANY code-marked page, so the product is valid
// without walking to the page. Only when the epoch moved does the lookup
// fall back to the per-page generation (refreshing the slot epoch when the
// page turns out untouched), and only a real page change forces
// re-translation.

type uslot struct {
	pc    uint64
	gen   uint64 // page generation at validation
	epoch uint64 // code-store epoch at validation
	stamp uint64 // table stamp this slot was written under
	u     *unit
}

// bslot is the block-table slot. Beyond the cached block it carries the
// block's chain link: after this slot's block retired, control transferred
// to next (a monomorphic inline cache of the dynamic successor). A link is
// followed only when the recorded successor start PC matches the machine's
// PC and the code-store epoch still equals nextEpoch — the epoch under
// which the successor was validated — so a followed link can never reach
// stale code. Conditional branches work naturally: when the other arm is
// taken the PC compare fails and dispatch falls back to the table.
type bslot struct {
	pc    uint64
	gen   uint64
	epoch uint64
	stamp uint64
	b     *xblock

	next      *xblock
	nextPC    uint64
	nextEpoch uint64
	nextSlot  uint32
}

type utab struct {
	slots []uslot
	shift uint
	stamp uint64
}

type btab struct {
	slots []bslot
	shift uint
	stamp uint64
}

// tabSize rounds a cache capacity to the next power of two (minimum 1) so
// indexing is a shift instead of a modulo.
func tabSize(cap int) (size int, shift uint) {
	size = 1
	shift = 64
	for size < cap {
		size <<= 1
		shift--
	}
	return size, shift
}

// l1hash spreads a word-aligned PC across the table; the same Fibonacci
// multiplier as shardOf so the two levels decorrelate only by shift width.
func l1hash(pc uint64) uint64 { return (pc >> 2) * 0x9e3779b97f4a7c15 }

func (t *utab) init(cap int) {
	size, shift := tabSize(cap)
	t.slots = make([]uslot, size)
	t.shift = shift
	t.stamp = 1 // zero-valued slots are invalid under stamp 1
}

func (t *utab) idx(pc uint64) uint64 { return l1hash(pc) >> t.shift }

func (t *btab) init(cap int) {
	size, shift := tabSize(cap)
	t.slots = make([]bslot, size)
	t.shift = shift
	t.stamp = 1
}

func (t *btab) idx(pc uint64) uint64 { return l1hash(pc) >> t.shift }
