package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
)

// Golden-file tests for EmitRunner — the whole-program emitter behind the
// AOT backend. Unlike the per-instruction EmitSpecialized goldens, these pin
// the complete generated runner source per (ISA, buildset): superblock
// metadata (gMaxBlockLen, gInstrCTI), hidden-field localization (which
// fields become function locals vs. materialized globals), the gClear sets,
// and the instruction function table. A codegen change that silently
// rematerializes a localized field or alters block metadata shows up as a
// textual diff here before it shows up as a performance regression.
// Regenerate with:
//
//	go test ./internal/core/ -run TestEmitRunnerGolden -update

func runnerConvFor(c isa.Convention) core.RunnerConv {
	return core.RunnerConv{
		SyscallNum: c.SyscallNum,
		Args:       c.Args,
		Ret:        c.Ret,
		Stack:      c.Stack,
		HeapBase:   c.HeapBase,
		StackTop:   c.StackTop,
	}
}

func TestEmitRunnerGolden(t *testing.T) {
	for _, tc := range goldenCases {
		name := fmt.Sprintf("%s/%s", tc.isa, tc.buildset)
		t.Run(name, func(t *testing.T) {
			i, err := isa.Load(tc.isa)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := core.Synthesize(i.Spec, tc.buildset, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.EmitRunner(runnerConvFor(i.Conv))
			if err != nil {
				t.Fatal(err)
			}
			// Sanity-pin the structural landmarks the AOT engine depends on,
			// so a golden regeneration cannot silently drop them.
			for _, landmark := range []string{"gMaxBlockLen", "gInstrCTI", "gInstrFns", "gClearFields"} {
				if !strings.Contains(got, landmark) {
					t.Fatalf("generated runner source lost landmark %q", landmark)
				}
			}
			path := filepath.Join("testdata", "runner", tc.isa+"_"+tc.buildset+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("EmitRunner output for %s/%s changed; run with -update if intentional (diff suppressed, %d vs %d bytes)",
					tc.isa, tc.buildset, len(got), len(want))
			}
		})
	}
}
