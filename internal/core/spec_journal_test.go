package core_test

import (
	"testing"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
)

// Speculation-journal tests on a real ISA (arm32, whose ADDS/SUBS write the
// NZCV flags in the separate `c` space): a Mark taken before a speculative
// span must roll back register writes, flag side effects, and memory stores
// exactly — including a multi-block span whose middle block stores into the
// code page, bumping its generation and invalidating the translation cache
// mid-speculation.

// specProg is laid out as four basic blocks so ExecBlock stops at each `b`:
// blk1 computes and sets flags, blk2 stores to data, blk3 stores into the
// code page (translation invalidation) and sets flags again, blk4 exits.
const specProg = `
.text
_start:
    mov r1, #1, 0
    mov r2, #2, 0
    adds r3, r1, r2, 0, 0
    b blk2
blk2:
    mov r4, #byte2(cell), 8
    orr r4, r4, #byte1(cell), 12
    orr r4, r4, #byte0(cell), 0
    str r3, [r4, #0]
    b blk3
blk3:
    mov r6, #1, 8
    orr r6, r6, #255, 12
    str r3, [r6, #0]
    subs r5, r3, r3, 0, 0
    b blk4
blk4:
    mov r7, #1, 0
    mov r0, #0, 0
    swi

.data
cell: .word 0
`

// codeScratch is the address blk3 stores to: inside the code page (the
// 64 KiB page at 0x10000) but past the program text.
const codeScratch = 0x1ff00

func buildSpecMachine(t *testing.T, i *isa.ISA, sim *core.Sim, prog *asm.Program) (*mach.Machine, *core.Exec) {
	t.Helper()
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	return m, sim.NewExec(m)
}

func assembleSpecProg(t *testing.T, i *isa.ISA) *asm.Program {
	t.Helper()
	a, err := asm.New(i)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Assemble("spec.s", specProg)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func loadWord(t *testing.T, m *mach.Machine, addr uint64) uint64 {
	t.Helper()
	v, f := m.Mem.Load(addr, 4)
	if f != mach.FaultNone {
		t.Fatalf("load %#x faulted", addr)
	}
	return v
}

// TestJournalMultiBlockRollback speculates across two blocks — a data store,
// then a code-page store (translation-cache invalidation) plus a flag
// write — rolls everything back, verifies the pre-speculation state is
// restored exactly, and then re-executes to completion, matching an
// undisturbed reference run on the same shared sim.
func TestJournalMultiBlockRollback(t *testing.T) {
	i := isatest.Load(t, "arm32")
	prog := assembleSpecProg(t, i)
	sim, err := core.Synthesize(i.Spec, "block_all_spec", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.BS.Spec {
		t.Fatal("block_all_spec should enable speculation")
	}
	var spaceNames []string
	for _, sp := range i.Spec.Spaces {
		spaceNames = append(spaceNames, sp.Name)
	}

	// Reference: run to completion with no speculation detour.
	mRef, xRef := buildSpecMachine(t, i, sim, prog)
	xRef.Run(1 << 20)
	if !mRef.Halted || mRef.ExitCode != 0 {
		t.Fatalf("reference run failed: halted=%v exit=%d", mRef.Halted, mRef.ExitCode)
	}
	refSnap := mRef.Snapshot()

	m, x := buildSpecMachine(t, i, sim, prog)
	if !m.JournalOn {
		t.Fatal("NewExec should enable the journal for a speculative buildset")
	}
	cellAddr := prog.Symbols["cell"]

	var batch core.Batch
	if !x.ExecBlock(&batch) {
		t.Fatalf("blk1 failed: %+v", batch)
	}
	preSnap := m.Snapshot()
	preFlags := m.MustSpace("c").Vals[0]
	preCell := loadWord(t, m, cellAddr)
	preCode := loadWord(t, m, codeScratch)
	preJournal := m.Journal.Len()

	mark := m.Journal.Mark()
	if !x.ExecBlock(&batch) { // blk2: journaled data store
		t.Fatalf("blk2 failed: %+v", batch)
	}
	if got := loadWord(t, m, cellAddr); got != 3 {
		t.Fatalf("speculative data store missing: cell = %d, want 3", got)
	}
	if !x.ExecBlock(&batch) { // blk3: code-page store + flag write
		t.Fatalf("blk3 failed: %+v", batch)
	}
	if got := loadWord(t, m, codeScratch); got != 3 {
		t.Fatalf("speculative code-page store missing: %d, want 3", got)
	}
	if m.Journal.Len() <= preJournal {
		t.Fatal("speculative span journaled nothing")
	}

	// Undo the whole span. The synthesized sims advance PC directly (it is
	// not journaled); the speculation driver restores it from its own mark.
	m.Journal.Rollback(m, mark)
	m.PC = preSnap.PC

	if eq, why := m.Snapshot().Equal(preSnap, spaceNames); !eq {
		t.Errorf("register state not restored: %s", why)
	}
	if got := m.MustSpace("c").Vals[0]; got != preFlags {
		t.Errorf("flags not restored: %#x, want %#x", got, preFlags)
	}
	if got := loadWord(t, m, cellAddr); got != preCell {
		t.Errorf("data store not rolled back: cell = %d, want %d", got, preCell)
	}
	if got := loadWord(t, m, codeScratch); got != preCode {
		t.Errorf("code-page store not rolled back: %d, want %d", got, preCode)
	}

	// Resume after rollback: the re-executed program must reach the same
	// final state as the undisturbed reference run, retranslating the
	// invalidated code page along the way.
	x.Run(1 << 20)
	if !m.Halted || m.ExitCode != 0 {
		t.Fatalf("resumed run failed: halted=%v exit=%d", m.Halted, m.ExitCode)
	}
	if eq, why := m.Snapshot().Equal(refSnap, spaceNames); !eq {
		t.Errorf("resumed run diverged from reference: %s", why)
	}
	if got := loadWord(t, m, cellAddr); got != loadWord(t, mRef, cellAddr) {
		t.Errorf("resumed cell = %d, reference = %d", got, loadWord(t, mRef, cellAddr))
	}
}

// TestJournalSingleInstrRollback rolls back one flag-setting instruction
// under the One interface with speculation, checking the register, the
// flags word, and the journal length bookkeeping.
func TestJournalSingleInstrRollback(t *testing.T) {
	i := isatest.Load(t, "arm32")
	prog := assembleSpecProg(t, i)
	sim, err := core.Synthesize(i.Spec, "one_all_spec", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var spaceNames []string
	for _, sp := range i.Spec.Spaces {
		spaceNames = append(spaceNames, sp.Name)
	}
	m, x := buildSpecMachine(t, i, sim, prog)

	var rec core.Record
	x.ExecOne(&rec) // mov r1, #1
	x.ExecOne(&rec) // mov r2, #2
	pre := m.Snapshot()
	preFlags := m.MustSpace("c").Vals[0]

	mark := m.Journal.Mark()
	x.ExecOne(&rec) // adds r3, r1, r2 — writes r3 and the flags
	if got := m.MustSpace("r").Vals[3]; got != 3 {
		t.Fatalf("adds did not execute: r3 = %d", got)
	}
	m.Journal.Rollback(m, mark)
	m.PC = pre.PC

	if eq, why := m.Snapshot().Equal(pre, spaceNames); !eq {
		t.Errorf("state not restored: %s", why)
	}
	if got := m.MustSpace("c").Vals[0]; got != preFlags {
		t.Errorf("flags not restored: %#x, want %#x", got, preFlags)
	}
	if m.Journal.Len() != int(mark) {
		t.Errorf("journal not truncated to mark: %d vs %d", m.Journal.Len(), mark)
	}
}
