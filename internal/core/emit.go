package core

import (
	"fmt"
	"sort"
	"strings"

	"singlespec/internal/lis"
)

// This file renders the code the engine derives for a buildset as
// compilable Go source — the paper's Figures 3 and 4 made executable. The
// same per-instruction specialization the closure compiler performs
// (liveness-driven dead-code elimination, hidden fields as private storage,
// per-entrypoint slicing) is emitted as one function per instruction per
// entrypoint, operating on package-level working state:
//
//	f_<name>   uint64  — frame storage for each non-builtin field
//	diPC, diPhysPC, diNextPC uint64; diBits uint32; diID uint16
//	diFault    uint8   — mach.Fault value
//	diNullify  bool
//
// Control flow mirrors Exec.runSegs exactly: each step segment is preceded
// by a boundary that diverts a pending fault to the exception segment (or
// out of the call) and stops a nullified instruction, and fault-capable
// statements are followed by a guard that jumps to the next boundary. The
// helpers referenced by emitted code (b2u, tern, udiv, ldU, spRead, ...)
// are supplied by the AOT runner harness (internal/aot); EmitSpecialized
// output is also golden-tested as text.

// RunnerConv is the ABI knowledge a generated runner needs beyond the spec:
// where syscall arguments live and the program memory layout. It mirrors
// isa.Convention without importing the isa package (which imports core's
// sibling lis only, keeping the dependency direction intact).
type RunnerConv struct {
	SyscallNum int
	Args       []int
	Ret        int
	Stack      int
	HeapBase   uint64
	StackTop   uint64
}

// EmitSpecialized renders the specialized per-instruction functions for
// this buildset. instrName restricts output to one instruction ("" emits
// all). The output is the instruction-function portion of the full runner
// source EmitRunner assembles.
func (s *Sim) EmitSpecialized(instrName string) string {
	var b strings.Builder
	for _, in := range s.Spec.Instrs {
		if instrName != "" && in.Name != instrName {
			continue
		}
		s.emitInstrFns(&b, in)
	}
	return b.String()
}

// emitInstrFns emits one function per entrypoint for in.
func (s *Sim) emitInstrFns(b *strings.Builder, in *lis.Instr) {
	ops := buildOps(s.Spec, in)
	li := analyzeLiveness(s.BS, ops, false)
	if s.Opts.NoDCE {
		li = liveAll(ops)
	}
	fmt.Fprintf(b, "// %s: instruction %s under buildset %q\n", s.Spec.Name, in.Name, s.BS.Name)
	// The i_ prefix keeps instruction functions unexported whatever the
	// mnemonic's case: a -buildmode=plugin build exports every capitalized
	// package-main symbol, and the plugin loader must only see the three
	// Plugin* entry points.
	s.emitUnitFns(b, "i_"+sanitizeIdent(in.Name), in, ops, li)
	fmt.Fprintln(b)
}

// emitFaultFns emits the pre-decode fault unit (ALL actions only), used
// when a fetch fault or undecodable encoding leaves no instruction to run.
func (s *Sim) emitFaultFns(b *strings.Builder) {
	var ops []iop
	for st := s.Spec.DecodeStep; st < len(s.Spec.Steps); st++ {
		for _, a := range s.Spec.AllActions[st] {
			ops = append(ops, iop{kind: opAction, step: st, act: a})
		}
	}
	fmt.Fprintf(b, "// %s: pre-decode fault unit under buildset %q\n", s.Spec.Name, s.BS.Name)
	s.emitUnitFns(b, "pdfault", nil, ops, liveAll(ops))
	fmt.Fprintln(b)
}

// emitUnitFns mirrors compileUnit: group live code-producing ops into step
// segments, slice the segment list by entrypoint, and emit one function per
// entrypoint with runSegs-equivalent control flow.
func (s *Sim) emitUnitFns(b *strings.Builder, fnBase string, in *lis.Instr, ops []iop, li *liveInfo) {
	e := &emitter{sim: s, in: in, li: li}
	e.nameLets(ops)
	segs := e.buildSegs(ops)
	excIdx := -1
	for i, sg := range segs {
		if sg.exc {
			excIdx = i
		}
	}
	for epi, ep := range s.BS.Entrypoints {
		lo, hi := 0, 0
		found := false
		for i, sg := range segs {
			if s.epOf[sg.step] == epi {
				if !found {
					lo = i
					found = true
				}
				hi = i + 1
			}
		}
		fmt.Fprintf(b, "func %s_%s() {\n", fnBase, sanitizeIdent(ep.Name))
		e.emitEpBody(b, ops, segs, epi, lo, hi, excIdx)
		fmt.Fprintf(b, "}\n")
	}
}

type eseg struct {
	step int
	exc  bool
	ops  []int // indices into the unit's ops, in order
}

type emitter struct {
	sim *Sim
	in  *lis.Instr
	li  *liveInfo

	letNames map[*lis.Local]string

	// touched collects the localized hidden fields (sim.localFields) the
	// current function body referenced, so emitEpBody can declare them as
	// zero-initialized locals instead of package globals.
	touched map[string]bool

	// Per-function emission state: body lines (label lines carry a marker
	// prefix) and the set of labels actually targeted by a goto. Go rejects
	// unused labels, so labels are resolved in a second pass.
	lines []string
	used  map[string]bool
}

// nameLets assigns stable Go local names to live let-bindings in op order
// (the same order the closure compiler assigns frame slots).
func (e *emitter) nameLets(ops []iop) {
	e.letNames = make(map[*lis.Local]string)
	n := 0
	var walk func(st lis.Stmt)
	walk = func(st lis.Stmt) {
		switch st := st.(type) {
		case *lis.Block:
			for _, s2 := range st.Stmts {
				walk(s2)
			}
		case *lis.LetStmt:
			if e.li.stmt[st] {
				e.letNames[st.Local] = fmt.Sprintf("l%d_%s", n, sanitizeIdent(st.Name))
				n++
			}
		case *lis.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		}
	}
	for i, op := range ops {
		if e.li.op[i] && op.kind == opAction {
			walk(op.act.Body)
		}
	}
}

// buildSegs mirrors compileUnit's grouping: one segment per step that has
// at least one live op producing code, in ascending step order.
func (e *emitter) buildSegs(ops []iop) []eseg {
	byStep := make(map[int][]int)
	var order []int
	for i, op := range ops {
		if !e.li.op[i] {
			continue
		}
		if op.kind == opAction && !e.blockProduces(op.act.Body) {
			continue
		}
		if _, seen := byStep[op.step]; !seen {
			order = append(order, op.step)
		}
		byStep[op.step] = append(byStep[op.step], i)
	}
	sort.Ints(order)
	segs := make([]eseg, 0, len(order))
	for _, st := range order {
		segs = append(segs, eseg{step: st, exc: st == e.sim.Spec.ExcStep, ops: byStep[st]})
	}
	return segs
}

// emitEpBody emits the runSegs-equivalent body for segments [lo,hi).
func (e *emitter) emitEpBody(b *strings.Builder, ops []iop, segs []eseg, epi, lo, hi, excIdx int) {
	e.lines = e.lines[:0]
	e.used = make(map[string]bool)
	e.touched = make(map[string]bool)

	// Let declarations for this entrypoint's live let statements.
	var lets []string
	for i := lo; i < hi; i++ {
		for _, oi := range segs[i].ops {
			if ops[oi].kind == opAction {
				e.collectLets(ops[oi].act.Body, &lets)
			}
		}
	}
	if len(lets) > 0 {
		e.linef("var %s uint64", strings.Join(lets, ", "))
		e.linef("_ = %s", lets[len(lets)-1])
	}

	// Eliminated computation at steps of this entrypoint that produced no
	// segment at all (documentation, mirroring the closure compiler's DCE).
	hasSeg := make(map[int]bool)
	for i := lo; i < hi; i++ {
		hasSeg[segs[i].step] = true
	}
	for oi, op := range ops {
		if e.sim.epOf[op.step] == epi && !hasSeg[op.step] {
			e.emitDeadOp(oi, op)
		}
	}

	wrote := len(lets) > 0
	for i := lo; i < hi; i++ {
		wrote = true
		sg := segs[i]
		e.label(fmt.Sprintf("c%d", i))
		divert := "end"
		if excIdx >= i && excIdx < hi {
			divert = fmt.Sprintf("s%d", excIdx)
		}
		e.gotoIf("diFault != 0", divert)
		if !sg.exc {
			e.gotoIf("diNullify", "end")
		}
		e.label(fmt.Sprintf("s%d", i))
		e.linef("// step %s", e.sim.Spec.Steps[sg.step])
		target := "end"
		if i+1 < hi {
			target = fmt.Sprintf("c%d", i+1)
		}
		for _, oi := range sg.ops {
			e.emitOp(oi, ops[oi], target)
		}
	}
	if !wrote && len(e.lines) == 0 {
		e.linef("// (no work for this instruction at this interface call)")
	}
	e.label("end")
	e.linef("return")

	// Localized hidden fields become zero-initialized locals: they never
	// cross the interface, so the runner's global state omits them entirely
	// (cross-block field elimination). Declarations go first; the blank
	// assignment keeps write-only locals compiling.
	if len(e.touched) > 0 {
		var names []string
		for _, f := range e.sim.Spec.Fields {
			if e.touched[f.Name] {
				names = append(names, "f_"+f.Name)
			}
		}
		decl := []string{
			"\t// localized hidden fields (never cross this interface call)",
			"\tvar " + strings.Join(names, ", ") + " uint64",
			"\t" + strings.TrimSuffix(strings.Repeat("_, ", len(names)), ", ") + " = " + strings.Join(names, ", "),
		}
		e.lines = append(decl, e.lines...)
	}
	e.flush(b)
}

func (e *emitter) linef(format string, args ...any) {
	e.lines = append(e.lines, "\t"+fmt.Sprintf(format, args...))
}

// label records a label position; flush keeps it only if targeted.
func (e *emitter) label(name string) {
	e.lines = append(e.lines, "\x00"+name)
}

func (e *emitter) gotoIf(cond, target string) {
	e.used[target] = true
	e.linef("if %s {\n\t\tgoto %s\n\t}", cond, target)
}

// guard emits the post-statement fault check fuse() inserts after
// fault-capable statements.
func (e *emitter) guard(ind, target string) {
	e.used[target] = true
	e.lines = append(e.lines, fmt.Sprintf("%sif diFault != 0 {\n%s\tgoto %s\n%s}", ind, ind, target, ind))
}

func (e *emitter) flush(b *strings.Builder) {
	for _, ln := range e.lines {
		if strings.HasPrefix(ln, "\x00") {
			name := ln[1:]
			if e.used[name] {
				fmt.Fprintf(b, "%s:\n", name)
			}
			continue
		}
		fmt.Fprintln(b, ln)
	}
}

func (e *emitter) collectLets(b *lis.Block, out *[]string) {
	var walk func(st lis.Stmt)
	walk = func(st lis.Stmt) {
		switch st := st.(type) {
		case *lis.Block:
			for _, s2 := range st.Stmts {
				walk(s2)
			}
		case *lis.LetStmt:
			if e.li.stmt[st] {
				*out = append(*out, e.letNames[st.Local])
			}
		case *lis.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		}
	}
	for _, st := range b.Stmts {
		walk(st)
	}
}

// ---- op emission ----

func (e *emitter) emitDeadOp(oi int, op iop) {
	if e.li.op[oi] {
		if op.kind == opAction {
			e.linef("// eliminated: %s action (%s) — no live statements", e.sim.Spec.Steps[op.step], op.act.Owner)
		}
		return
	}
	switch op.kind {
	case opExtract:
		e.linef("// dead (hidden): %s", op.bind.Op.IdxField.Name)
	case opRead:
		e.linef("// dead (hidden): %s = %s[...]", op.bind.Op.Value.Name, op.bind.Acc.Space.Name)
	case opAction:
		e.linef("// dead: %s action (%s)", e.sim.Spec.Steps[op.step], op.act.Owner)
	}
}

func (e *emitter) emitOp(oi int, op iop, target string) {
	if !e.li.op[oi] {
		e.emitDeadOp(oi, op)
		return
	}
	b := op.bind
	switch op.kind {
	case opExtract:
		src := "0"
		if b.IdxEnc != nil {
			src = e.encStr(b.IdxEnc)
		} else if b.IdxConst != 0 {
			src = fmt.Sprintf("%d", b.IdxConst)
		}
		e.assignFieldLine("\t", b.Op.IdxField, src)
	case opRead:
		sp := b.Acc.Space
		f := b.Op.Value
		idx, isC := e.opIndex(b, sp.Count)
		if isC {
			k := b.IdxConst
			if k == sp.Zero {
				e.assignFieldLine("\t", f, "0")
			} else {
				e.assignFieldLine("\t", f, fmt.Sprintf("regs[%d][%d]", sp.Index, k))
			}
		} else {
			e.assignFieldLine("\t", f, fmt.Sprintf("spRead(%d, int(%s))", sp.Index, idx))
		}
	case opWrite:
		sp := b.Acc.Space
		val := e.readFieldStr(b.Op.Value)
		idx, isC := e.opIndex(b, sp.Count)
		if isC {
			k := b.IdxConst
			if k == sp.Zero {
				e.linef("_ = %s // write to hardwired-zero register dropped", val)
			} else {
				e.linef("regs[%d][%d] = %s", sp.Index, k, val)
			}
		} else {
			e.linef("spWrite(%d, int(%s), %s)", sp.Index, idx, val)
		}
	case opAction:
		e.linef("// %s action (%s)", e.sim.Spec.Steps[op.step], op.act.Owner)
		for _, st := range op.act.Body.Stmts {
			e.emitStmt(st, "\t", target)
		}
	}
}

// opIndex mirrors operandIndex in the dynamic model: a constant for
// constant bindings (unclamped), otherwise the decoded index field clamped
// into the space.
func (e *emitter) opIndex(b *lis.OperandBinding, count int) (string, bool) {
	if b.IdxEnc == nil {
		return fmt.Sprintf("%d", b.IdxConst), true
	}
	f := e.readFieldStr(b.Op.IdxField)
	if count&(count-1) == 0 {
		return fmt.Sprintf("(%s & %d)", f, count-1), false
	}
	return fmt.Sprintf("(%s %% %d)", f, count), false
}

// ---- statement emission ----

func (e *emitter) emitStmt(st lis.Stmt, ind, target string) {
	switch st := st.(type) {
	case *lis.Block:
		for _, s2 := range st.Stmts {
			e.emitStmt(s2, ind, target)
		}
	case *lis.AssignStmt:
		if !e.li.stmt[st] {
			e.lines = append(e.lines, fmt.Sprintf("%s// dead (hidden): %s = ...", ind, st.Name))
			return
		}
		rhs := e.exprStr(st.RHS)
		if st.Ref == lis.RefField {
			e.assignFieldLine(ind, st.Sym.(*lis.Field), rhs)
		} else {
			e.lines = append(e.lines, fmt.Sprintf("%s%s = %s", ind, e.letNames[st.Sym.(*lis.Local)], rhs))
		}
		if exprHasEffect(st.RHS) {
			e.guard(ind, target)
		}
	case *lis.LetStmt:
		if !e.li.stmt[st] {
			e.lines = append(e.lines, fmt.Sprintf("%s// dead: %s := ...", ind, st.Name))
			return
		}
		e.lines = append(e.lines, fmt.Sprintf("%s%s = %s", ind, e.letNames[st.Local], e.exprStr(st.RHS)))
		if exprHasEffect(st.RHS) {
			e.guard(ind, target)
		}
	case *lis.IfStmt:
		if !e.li.stmt[st] {
			e.lines = append(e.lines, ind+"// dead: if ... { ... }")
			return
		}
		if cv, ok := e.exprConst(st.Cond); ok {
			// The compiler folds constant conditions to the selected branch.
			if cv != 0 {
				for _, s2 := range st.Then.Stmts {
					e.emitStmt(s2, ind, target)
				}
			} else if st.Else != nil && e.li.stmt[st.Else] {
				e.emitStmt(st.Else, ind, target)
			}
			return
		}
		e.lines = append(e.lines, fmt.Sprintf("%sif %s != 0 {", ind, e.exprStr(st.Cond)))
		for _, s2 := range st.Then.Stmts {
			e.emitStmt(s2, ind+"\t", target)
		}
		if st.Else != nil && e.li.stmt[st.Else] {
			e.lines = append(e.lines, ind+"} else {")
			e.emitStmt(st.Else, ind+"\t", target)
		}
		e.lines = append(e.lines, ind+"}")
		if e.stmtCanFault(st) {
			e.guard(ind, target)
		}
	case *lis.CallStmt:
		b := st.Builtin
		switch {
		case b.Kind == lis.BuiltinStore:
			e.lines = append(e.lines, fmt.Sprintf("%sstV(%s, %s, %d)",
				ind, e.exprStr(st.Args[0]), e.exprStr(st.Args[1]), b.Size))
		case b.Name == "syscall":
			e.lines = append(e.lines, ind+"doSyscall()")
		case b.Name == "halt":
			e.lines = append(e.lines, fmt.Sprintf("%sdoHalt(%s)", ind, e.exprStr(st.Args[0])))
		}
		e.guard(ind, target)
	}
}

// stmtCanFault mirrors cstmt.canFault for live statements.
func (e *emitter) stmtCanFault(st lis.Stmt) bool {
	switch st := st.(type) {
	case *lis.Block:
		for _, s2 := range st.Stmts {
			if e.li.stmt[s2] && e.stmtCanFault(s2) {
				return true
			}
		}
		return false
	case *lis.AssignStmt:
		return exprHasEffect(st.RHS)
	case *lis.LetStmt:
		return exprHasEffect(st.RHS)
	case *lis.IfStmt:
		elseLive := st.Else != nil && e.li.stmt[st.Else]
		if cv, ok := e.exprConst(st.Cond); ok {
			if cv != 0 {
				return e.stmtCanFault(st.Then)
			}
			return elseLive && e.stmtCanFault(st.Else)
		}
		if e.stmtCanFault(st.Then) || (elseLive && e.stmtCanFault(st.Else)) {
			return true
		}
		return exprHasEffect(st.Cond)
	case *lis.CallStmt:
		return true
	}
	return false
}

// stmtProduces mirrors whether compileStmt yields a non-nil closure.
func (e *emitter) stmtProduces(st lis.Stmt) bool {
	if !e.li.stmt[st] {
		return false
	}
	switch st := st.(type) {
	case *lis.Block:
		return e.blockProduces(st)
	case *lis.IfStmt:
		if cv, ok := e.exprConst(st.Cond); ok {
			if cv != 0 {
				return e.blockProduces(st.Then)
			}
			return st.Else != nil && e.li.stmt[st.Else] && e.stmtProduces(st.Else)
		}
		return true // condition is evaluated even when both branches are empty
	}
	return true
}

func (e *emitter) blockProduces(b *lis.Block) bool {
	for _, st := range b.Stmts {
		if e.stmtProduces(st) {
			return true
		}
	}
	return false
}

// ---- expressions ----

// exprConst mirrors the closure compiler's constant folding (the dynamic
// model: encoding fields and builtins reading working state are not
// constant).
func (e *emitter) exprConst(x lis.Expr) (uint64, bool) {
	switch x := x.(type) {
	case *lis.NumExpr:
		return x.Val, true
	case *lis.IdentExpr:
		if x.Ref == lis.RefConst {
			return x.Sym.(*lis.Const).Val, true
		}
	case *lis.UnaryExpr:
		if v, ok := e.exprConst(x.X); ok {
			return lis.EvalUnaryOp(x.Op, v), true
		}
	case *lis.BinaryExpr:
		l, lok := e.exprConst(x.L)
		r, rok := e.exprConst(x.R)
		if lok && rok {
			return lis.EvalBinaryOp(x.Op, l, r), true
		}
	case *lis.CondExpr:
		if c, ok := e.exprConst(x.C); ok {
			if c != 0 {
				return e.exprConst(x.A)
			}
			return e.exprConst(x.B)
		}
	case *lis.CallExpr:
		if x.Builtin.Kind != lis.BuiltinPure {
			return 0, false
		}
		vs := make([]uint64, len(x.Args))
		for i, a := range x.Args {
			v, ok := e.exprConst(a)
			if !ok {
				return 0, false
			}
			vs[i] = v
		}
		return lis.EvalPureBuiltin(x.Builtin, vs), true
	}
	return 0, false
}

func (e *emitter) exprStr(x lis.Expr) string {
	if v, ok := e.exprConst(x); ok {
		return fmtNum(v)
	}
	switch x := x.(type) {
	case *lis.IdentExpr:
		switch x.Ref {
		case lis.RefLocal:
			return e.letNames[x.Sym.(*lis.Local)]
		case lis.RefEncoding:
			return e.encStr(e.in.Format.Field(x.Name))
		case lis.RefField:
			return e.readFieldStr(x.Sym.(*lis.Field))
		}
		return x.Name
	case *lis.UnaryExpr:
		switch x.Op {
		case lis.OpNeg:
			return "-(" + e.exprStr(x.X) + ")"
		case lis.OpInv:
			return "^(" + e.exprStr(x.X) + ")"
		default: // OpNot
			return "b2u((" + e.exprStr(x.X) + ") == 0)"
		}
	case *lis.BinaryExpr:
		return e.binaryStr(x)
	case *lis.CondExpr:
		c, a, b := e.exprStr(x.C), e.exprStr(x.A), e.exprStr(x.B)
		if exprHasEffect(x.A) || exprHasEffect(x.B) {
			// Only the selected arm may evaluate (its effects must not fire
			// otherwise), matching the compiled closure's laziness.
			return fmt.Sprintf("func() uint64 { if %s != 0 { return %s }; return %s }()", c, a, b)
		}
		return fmt.Sprintf("tern(%s, %s, %s)", c, a, b)
	case *lis.CallExpr:
		b := x.Builtin
		switch b.Kind {
		case lis.BuiltinPure:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = e.exprStr(a)
			}
			return fmt.Sprintf("bi_%s(%s)", b.Name, strings.Join(args, ", "))
		case lis.BuiltinLoad:
			fn := "ldU"
			if b.Signed {
				fn = "ldS"
			}
			return fmt.Sprintf("%s(%s, %d)", fn, e.exprStr(x.Args[0]), b.Size)
		}
	}
	return "0 /* unreachable */"
}

func (e *emitter) binaryStr(x *lis.BinaryExpr) string {
	l, r := e.exprStr(x.L), e.exprStr(x.R)
	switch x.Op {
	case lis.OpAdd:
		return "(" + l + " + " + r + ")"
	case lis.OpSub:
		return "(" + l + " - " + r + ")"
	case lis.OpMul:
		return "(" + l + " * " + r + ")"
	case lis.OpAnd:
		return "(" + l + " & " + r + ")"
	case lis.OpOr:
		return "(" + l + " | " + r + ")"
	case lis.OpXor:
		return "(" + l + " ^ " + r + ")"
	case lis.OpDiv:
		return "udiv(" + l + ", " + r + ")"
	case lis.OpRem:
		return "urem(" + l + ", " + r + ")"
	case lis.OpShl:
		if k, ok := e.exprConst(x.R); ok && k < 64 {
			return fmt.Sprintf("(%s << %d)", l, k)
		}
		return "shl(" + l + ", " + r + ")"
	case lis.OpShr:
		if k, ok := e.exprConst(x.R); ok && k < 64 {
			return fmt.Sprintf("(%s >> %d)", l, k)
		}
		return "shr(" + l + ", " + r + ")"
	case lis.OpEq:
		return "b2u(" + l + " == " + r + ")"
	case lis.OpNe:
		return "b2u(" + l + " != " + r + ")"
	case lis.OpLt:
		return "b2u(" + l + " < " + r + ")"
	case lis.OpLe:
		return "b2u(" + l + " <= " + r + ")"
	case lis.OpGt:
		return "b2u(" + l + " > " + r + ")"
	case lis.OpGe:
		return "b2u(" + l + " >= " + r + ")"
	case lis.OpLand:
		return "b2u(" + l + " != 0 && " + r + " != 0)"
	case lis.OpLor:
		return "b2u(" + l + " != 0 || " + r + " != 0)"
	}
	return "0 /* unreachable */"
}

// encStr extracts an encoding bitfield, matching encValue's arithmetic.
func (e *emitter) encStr(ff *lis.FmtField) string {
	mask := uint32(1)<<uint(ff.Width()) - 1
	if ff.Lo == 0 {
		return fmt.Sprintf("uint64(diBits&%#x)", mask)
	}
	return fmt.Sprintf("uint64(diBits>>%d&%#x)", ff.Lo, mask)
}

// readFieldStr mirrors readField in the dynamic model.
func (e *emitter) readFieldStr(f *lis.Field) string {
	if f.Builtin {
		switch f.Name {
		case lis.FieldPC:
			return "diPC"
		case lis.FieldPhysPC:
			return "diPhysPC"
		case lis.FieldInstrBits:
			return "uint64(diBits)"
		case lis.FieldNextPC:
			return "diNextPC"
		case lis.FieldFault:
			return "uint64(diFault)"
		case lis.FieldCtx:
			return "uint64(0)" // single-context runner
		case lis.FieldOpcode:
			return "uint64(diID)"
		case lis.FieldNullify:
			return "b2u(diNullify)"
		}
	}
	if e.sim.localFields[f.Name] {
		e.touched[f.Name] = true
	}
	return "f_" + f.Name
}

// assignFieldLine mirrors assignField: builtins update the working header,
// non-builtin fields mask to their declared width on every store.
func (e *emitter) assignFieldLine(ind string, f *lis.Field, rhs string) {
	if f.Builtin {
		switch f.Name {
		case lis.FieldPhysPC:
			e.lines = append(e.lines, fmt.Sprintf("%sdiPhysPC = %s", ind, rhs))
			return
		case lis.FieldNextPC:
			e.lines = append(e.lines, fmt.Sprintf("%sdiNextPC = %s", ind, rhs))
			return
		case lis.FieldFault:
			e.lines = append(e.lines, fmt.Sprintf("%sdiFault = uint8(%s)", ind, rhs))
			return
		case lis.FieldNullify:
			e.lines = append(e.lines, fmt.Sprintf("%sdiNullify = (%s) != 0", ind, rhs))
			return
		}
	}
	if e.sim.localFields[f.Name] {
		e.touched[f.Name] = true
	}
	if f.Width < 64 {
		e.lines = append(e.lines, fmt.Sprintf("%sf_%s = %s & %#x", ind, f.Name, rhs, uint64(1)<<uint(f.Width)-1))
		return
	}
	e.lines = append(e.lines, fmt.Sprintf("%sf_%s = %s", ind, f.Name, rhs))
}

func fmtNum(v uint64) string {
	if v > 9 {
		return fmt.Sprintf("%#x", v)
	}
	return fmt.Sprintf("%d", v)
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ---- full runner source ----

// EmitRunner assembles the generated half of a standalone AOT runner for
// this (spec, buildset) pair: constants describing the interface, the
// decode table, working-state globals, the specialized instruction
// functions, the pre-decode fault unit, and the dispatch tables. The static
// harness half (memory, register spaces, OS emulation, the frame protocol,
// and the helpers the generated code calls) lives in internal/aot and is
// compiled into the same package main.
func (s *Sim) EmitRunner(rc RunnerConv) (string, error) {
	spec := s.Spec
	if len(spec.Instrs) == 0 {
		return "", fmt.Errorf("core: emit runner: spec %q has no instructions", spec.Name)
	}
	if spec.FetchStep >= spec.DecodeStep {
		return "", fmt.Errorf("core: emit runner: spec %q fetches at/after decode (step %d >= %d), which the AOT driver does not model",
			spec.Name, spec.FetchStep, spec.DecodeStep)
	}
	for st := 0; st < spec.DecodeStep; st++ {
		if len(spec.AllActions[st]) > 0 {
			return "", fmt.Errorf("core: emit runner: spec %q has ALL actions at pre-decode step %q; the AOT driver only models the engine fetch before decode",
				spec.Name, spec.Steps[st])
		}
	}
	if len(rc.Args) == 0 {
		return "", fmt.Errorf("core: emit runner: convention has no syscall argument registers")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by singlespec for spec %q, buildset %q. DO NOT EDIT.\n", spec.Name, s.BS.Name)
	b.WriteString("package main\n\n")

	// Interface constants for the harness driver.
	fmt.Fprintf(&b, "const (\n")
	fmt.Fprintf(&b, "\tgSpecName     = %q\n", spec.Name)
	fmt.Fprintf(&b, "\tgBuildsetName = %q\n", s.BS.Name)
	fmt.Fprintf(&b, "\tgInstrSize    = uint64(%d)\n", spec.InstrSize)
	fmt.Fprintf(&b, "\tgBigEndian    = %v\n", spec.Endian == 1)
	fmt.Fprintf(&b, "\tgModeBlock    = %v\n", s.BS.Mode == lis.ModeBlock)
	fmt.Fprintf(&b, "\tgEmitRecs     = %v\n", s.emitRecs)
	fmt.Fprintf(&b, "\tgNumEps       = %d\n", len(s.BS.Entrypoints))
	fmt.Fprintf(&b, "\tgFetchEp      = %d\n", s.epOf[spec.FetchStep])
	fmt.Fprintf(&b, "\tgDecodeEp     = %d\n", s.epOf[spec.DecodeStep])
	fmt.Fprintf(&b, "\tgUndecodedID  = uint16(0x%04x)\n", undecoded)
	fmt.Fprintf(&b, "\tgConvSyscallNum = %d\n", rc.SyscallNum)
	fmt.Fprintf(&b, "\tgConvRet        = %d\n", rc.Ret)
	fmt.Fprintf(&b, "\tgConvStack      = %d\n", rc.Stack)
	fmt.Fprintf(&b, "\tgHeapBase       = uint64(%#x)\n", rc.HeapBase)
	fmt.Fprintf(&b, "\tgStackTop       = uint64(%#x)\n", rc.StackTop)
	fmt.Fprintf(&b, ")\n\n")
	fmt.Fprintf(&b, "var gConvArgs = %#v\n\n", rc.Args)

	// Register spaces.
	var counts, zeros []int
	var names []string
	for _, sp := range spec.Spaces {
		counts = append(counts, sp.Count)
		zeros = append(zeros, sp.Zero)
		names = append(names, sp.Name)
	}
	fmt.Fprintf(&b, "var gSpaceCount = %#v\n", counts)
	fmt.Fprintf(&b, "var gSpaceZero = %#v\n", zeros)
	fmt.Fprintf(&b, "var gSpaceName = %#v\n\n", names)

	// Decode table in spec order; linear first-match scan is equivalent to
	// the engine's bucketed decoder (buckets preserve declaration order and
	// every match for bits lies in the probed bucket).
	fmt.Fprintf(&b, "var gDecTab = []struct{ mask, val uint32 }{\n")
	for _, in := range spec.Instrs {
		fmt.Fprintf(&b, "\t{%#x, %#x}, // %s\n", uint32(in.Mask), uint32(in.Value), in.Name)
	}
	fmt.Fprintf(&b, "}\n\n")
	b.WriteString("func gDecode(bits uint32) int {\n")
	b.WriteString("\tfor i := range gDecTab {\n")
	b.WriteString("\t\tif bits&gDecTab[i].mask == gDecTab[i].val {\n\t\t\treturn i\n\t\t}\n\t}\n")
	b.WriteString("\treturn -1\n}\n\n")

	// Working state: the record header plus frame storage for every
	// non-builtin field. Frame slots persist across instructions exactly
	// like the interpreter's frame (read-before-write staleness included).
	b.WriteString("var (\n")
	b.WriteString("\tdiPC      uint64\n")
	b.WriteString("\tdiPhysPC  uint64\n")
	b.WriteString("\tdiNextPC  uint64\n")
	b.WriteString("\tdiBits    uint32\n")
	b.WriteString("\tdiID      uint16\n")
	b.WriteString("\tdiFault   uint8\n")
	b.WriteString("\tdiNullify bool\n")
	b.WriteString(")\n\n")
	// Localized hidden fields (see localize.go) never appear here: they are
	// declared as zero-initialized locals inside each specialized function,
	// so the generated state carries only fields that can cross an
	// instruction or interface-call boundary.
	var frameFields, hiddenFields []*lis.Field
	for _, f := range spec.Fields {
		if f.Builtin || s.localFields[f.Name] {
			continue
		}
		frameFields = append(frameFields, f)
		if !s.BS.Visible(f) {
			hiddenFields = append(hiddenFields, f)
		}
	}
	if len(frameFields) > 0 {
		b.WriteString("var (\n")
		for _, f := range frameFields {
			fmt.Fprintf(&b, "\tf_%s uint64\n", f.Name)
		}
		b.WriteString(")\n\n")
	}
	b.WriteString("func gClearFields() {\n")
	for _, f := range frameFields {
		fmt.Fprintf(&b, "\tf_%s = 0\n", f.Name)
	}
	b.WriteString("}\n\n")
	b.WriteString("func gClearHidden() {\n")
	for _, f := range hiddenFields {
		fmt.Fprintf(&b, "\tf_%s = 0\n", f.Name)
	}
	b.WriteString("}\n\n")

	// Visible fields in record slot order.
	b.WriteString("var gVisPtrs = []*uint64{")
	for i, name := range s.Layout.FieldNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "&f_%s", name)
	}
	b.WriteString("}\n\n")
	b.WriteString("var gVisNames = []string{")
	for i, name := range s.Layout.FieldNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", name)
	}
	b.WriteString("}\n\n")

	// Specialized instruction functions and the pre-decode fault unit.
	b.WriteString(s.EmitSpecialized(""))
	s.emitFaultFns(&b)

	// Dispatch tables: [instruction ID][entrypoint].
	b.WriteString("var gInstrFns = [][]func(){\n")
	for _, in := range spec.Instrs {
		b.WriteString("\t{")
		for ei, ep := range s.BS.Entrypoints {
			if ei > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "i_%s_%s", sanitizeIdent(in.Name), sanitizeIdent(ep.Name))
		}
		b.WriteString("},\n")
	}
	b.WriteString("}\n\n")
	b.WriteString("var gFaultFns = []func(){")
	for ei, ep := range s.BS.Entrypoints {
		if ei > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "pdfault_%s", sanitizeIdent(ep.Name))
	}
	b.WriteString("}\n\n")

	// Superblock metadata: which instructions end a block (control transfers
	// and barriers, matching the interpreter's block boundaries) and the
	// block-length cap shared with the interpreter translator.
	fmt.Fprintf(&b, "const gMaxBlockLen = %d\n\n", s.Opts.MaxBlockLen)
	b.WriteString("var gInstrCTI = []bool{\n")
	for _, in := range spec.Instrs {
		fmt.Fprintf(&b, "\t%v, // %s\n", in.CTI || in.Barrier, in.Name)
	}
	b.WriteString("}\n")

	return b.String(), nil
}
