package core

import (
	"fmt"
	"strings"

	"singlespec/internal/lis"
)

// EmitSpecialized renders the code the engine derives for this buildset as
// readable Go-style source — the direct analogue of the paper's Figures 3
// and 4: hidden fields appear as locals, visible fields as record stores,
// and computation eliminated by liveness analysis appears as a comment.
// instrName restricts output to one instruction ("" emits all).
//
// The emitted text documents the specialization; the engine executes the
// equivalent compiled closures.
func (s *Sim) EmitSpecialized(instrName string) string {
	var b strings.Builder
	for _, in := range s.Spec.Instrs {
		if instrName != "" && in.Name != instrName {
			continue
		}
		s.emitInstr(&b, in)
	}
	return b.String()
}

func (s *Sim) emitInstr(b *strings.Builder, in *lis.Instr) {
	ops := buildOps(s.Spec, in)
	li := analyzeLiveness(s.BS, ops, false)
	if s.Opts.NoDCE {
		li = liveAll(ops)
	}
	e := &emitter{sim: s, in: in, li: li, b: b}

	fmt.Fprintf(b, "// %s: instruction %s under buildset %q\n", s.Spec.Name, in.Name, s.BS.Name)

	// Collect hidden fields this instruction actually uses (frame locals).
	locals := e.usedHiddenFields(ops)
	for epi, ep := range s.BS.Entrypoints {
		fmt.Fprintf(b, "func %s_%s(m *Machine, di *Record) {\n", in.Name, ep.Name)
		if epi == 0 || len(s.BS.Entrypoints) > 1 {
			if len(locals) > 0 {
				fmt.Fprintf(b, "\tvar %s uint64 // hidden fields: private locals\n", strings.Join(locals, ", "))
			}
		}
		wrote := false
		for i, op := range ops {
			if s.epOf[op.step] != epi {
				continue
			}
			e.emitOp(i, op)
			wrote = true
		}
		if !wrote {
			fmt.Fprintf(b, "\t// (no work for this instruction at this interface call)\n")
		}
		if epi == len(s.BS.Entrypoints)-1 {
			fmt.Fprintf(b, "\tm.PC = %s\n", e.fieldRef(s.Spec.Field(lis.FieldNextPC)))
		}
		fmt.Fprintf(b, "}\n")
	}
	fmt.Fprintln(b)
}

type emitter struct {
	sim *Sim
	in  *lis.Instr
	li  *liveInfo
	b   *strings.Builder
}

// usedHiddenFields lists hidden non-builtin fields referenced by live code.
func (e *emitter) usedHiddenFields(ops []iop) []string {
	seen := map[string]bool{}
	var out []string
	note := func(f *lis.Field) {
		if f == nil || f.Builtin || e.sim.BS.Visible(f) || seen[f.Name] {
			return
		}
		seen[f.Name] = true
		out = append(out, f.Name)
	}
	var walkE func(x lis.Expr)
	var walkS func(st lis.Stmt)
	walkE = func(x lis.Expr) {
		switch x := x.(type) {
		case *lis.IdentExpr:
			if x.Ref == lis.RefField {
				note(x.Sym.(*lis.Field))
			}
		case *lis.UnaryExpr:
			walkE(x.X)
		case *lis.BinaryExpr:
			walkE(x.L)
			walkE(x.R)
		case *lis.CondExpr:
			walkE(x.C)
			walkE(x.A)
			walkE(x.B)
		case *lis.CallExpr:
			for _, a := range x.Args {
				walkE(a)
			}
		}
	}
	walkS = func(st lis.Stmt) {
		if !e.li.stmt[st] {
			return
		}
		switch st := st.(type) {
		case *lis.Block:
			for _, s2 := range st.Stmts {
				walkS(s2)
			}
		case *lis.AssignStmt:
			if st.Ref == lis.RefField {
				note(st.Sym.(*lis.Field))
			}
			walkE(st.RHS)
		case *lis.LetStmt:
			walkE(st.RHS)
		case *lis.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *lis.CallStmt:
			for _, a := range st.Args {
				walkE(a)
			}
		}
	}
	for i, op := range ops {
		if !e.li.op[i] {
			continue
		}
		switch op.kind {
		case opExtract:
			note(op.bind.Op.IdxField)
		case opRead, opWrite:
			note(op.bind.Op.Value)
			if op.bind.IdxEnc != nil {
				note(op.bind.Op.IdxField)
			}
		case opAction:
			walkS(op.act.Body)
		}
	}
	return out
}

func (e *emitter) fieldRef(f *lis.Field) string {
	if f.Builtin {
		switch f.Name {
		case lis.FieldPC:
			return "di.PC"
		case lis.FieldPhysPC:
			return "di.PhysPC"
		case lis.FieldInstrBits:
			return "di.InstrBits"
		case lis.FieldNextPC:
			return "di.NextPC"
		case lis.FieldFault:
			return "di.Fault"
		case lis.FieldCtx:
			return "di.Ctx"
		case lis.FieldOpcode:
			return "di.InstrID"
		case lis.FieldNullify:
			return "di.Nullified"
		}
	}
	if e.sim.BS.Visible(f) {
		return "di." + f.Name // published in the record
	}
	return f.Name // hidden: a local
}

func (e *emitter) emitOp(idx int, op iop) {
	ind := "\t"
	stepName := e.sim.Spec.Steps[op.step]
	switch op.kind {
	case opExtract:
		f := op.bind.Op.IdxField
		src := fmt.Sprintf("bits(di.InstrBits, %d, %d)", enc(op.bind).Hi, enc(op.bind).Lo)
		if op.bind.IdxEnc == nil {
			src = fmt.Sprintf("%d", op.bind.IdxConst)
		}
		if e.li.op[idx] {
			fmt.Fprintf(e.b, "%s%s = %s // %s: operand decode\n", ind, e.fieldRef(f), src, stepName)
		} else {
			fmt.Fprintf(e.b, "%s// dead (hidden): %s = %s\n", ind, f.Name, src)
		}
	case opRead:
		f := op.bind.Op.Value
		idxs := e.idxRef(op.bind)
		if e.li.op[idx] {
			fmt.Fprintf(e.b, "%s%s = m.%s[%s] // %s: read operand %s\n",
				ind, e.fieldRef(f), op.bind.Acc.Space.Name, idxs, stepName, op.bind.Op.Name)
		} else {
			fmt.Fprintf(e.b, "%s// dead (hidden): %s = m.%s[%s]\n", ind, f.Name, op.bind.Acc.Space.Name, idxs)
		}
	case opWrite:
		f := op.bind.Op.Value
		idxs := e.idxRef(op.bind)
		fmt.Fprintf(e.b, "%sm.%s[%s] = %s // %s: write operand %s\n",
			ind, op.bind.Acc.Space.Name, idxs, e.fieldRef(f), stepName, op.bind.Op.Name)
	case opAction:
		fmt.Fprintf(e.b, "%s// %s action (%s)\n", ind, stepName, op.act.Owner)
		e.emitBlock(op.act.Body, ind)
	}
}

func enc(b *lis.OperandBinding) *lis.FmtField {
	if b.IdxEnc != nil {
		return b.IdxEnc
	}
	return &lis.FmtField{}
}

func (e *emitter) idxRef(b *lis.OperandBinding) string {
	if b.IdxEnc == nil {
		return fmt.Sprintf("%d", b.IdxConst)
	}
	return e.fieldRef(b.Op.IdxField)
}

func (e *emitter) emitBlock(blk *lis.Block, ind string) {
	for _, st := range blk.Stmts {
		e.emitStmt(st, ind)
	}
}

func (e *emitter) emitStmt(st lis.Stmt, ind string) {
	switch st := st.(type) {
	case *lis.Block:
		e.emitBlock(st, ind)
	case *lis.AssignStmt:
		var lhs string
		if st.Ref == lis.RefField {
			lhs = e.fieldRef(st.Sym.(*lis.Field))
		} else {
			lhs = st.Name
		}
		if e.li.stmt[st] {
			fmt.Fprintf(e.b, "%s%s = %s\n", ind, lhs, e.expr(st.RHS))
		} else {
			fmt.Fprintf(e.b, "%s// dead (hidden): %s = %s\n", ind, st.Name, e.expr(st.RHS))
		}
	case *lis.LetStmt:
		if e.li.stmt[st] {
			fmt.Fprintf(e.b, "%s%s := %s\n", ind, st.Name, e.expr(st.RHS))
		} else {
			fmt.Fprintf(e.b, "%s// dead: %s := %s\n", ind, st.Name, e.expr(st.RHS))
		}
	case *lis.IfStmt:
		if !e.li.stmt[st] {
			fmt.Fprintf(e.b, "%s// dead: if %s { ... }\n", ind, e.expr(st.Cond))
			return
		}
		fmt.Fprintf(e.b, "%sif %s != 0 {\n", ind, e.expr(st.Cond))
		e.emitBlock(st.Then, ind+"\t")
		if st.Else != nil {
			fmt.Fprintf(e.b, "%s} else {\n", ind)
			e.emitStmt(st.Else, ind+"\t")
		}
		fmt.Fprintf(e.b, "%s}\n", ind)
	case *lis.CallStmt:
		fmt.Fprintf(e.b, "%s%s(%s)\n", ind, st.Name, e.args(st.Args))
	}
}

func (e *emitter) args(xs []lis.Expr) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = e.expr(x)
	}
	return strings.Join(parts, ", ")
}

func (e *emitter) expr(x lis.Expr) string {
	switch x := x.(type) {
	case *lis.NumExpr:
		if x.Val > 9 {
			return fmt.Sprintf("%#x", x.Val)
		}
		return fmt.Sprintf("%d", x.Val)
	case *lis.IdentExpr:
		switch x.Ref {
		case lis.RefField:
			return e.fieldRef(x.Sym.(*lis.Field))
		case lis.RefConst:
			return fmt.Sprintf("%d", x.Sym.(*lis.Const).Val)
		case lis.RefEncoding:
			ff := e.in.Format.Field(x.Name)
			return fmt.Sprintf("bits(di.InstrBits, %d, %d)", ff.Hi, ff.Lo)
		default:
			return x.Name
		}
	case *lis.UnaryExpr:
		return fmt.Sprintf("%s(%s)", x.Op, e.expr(x.X))
	case *lis.BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", e.expr(x.L), x.Op, e.expr(x.R))
	case *lis.CondExpr:
		return fmt.Sprintf("tern(%s, %s, %s)", e.expr(x.C), e.expr(x.A), e.expr(x.B))
	case *lis.CallExpr:
		return fmt.Sprintf("%s(%s)", x.Name, e.args(x.Args))
	}
	return "?"
}
