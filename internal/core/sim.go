package core

import (
	"fmt"
	"sort"

	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// Options tune synthesis, mostly for the paper's ablation studies.
type Options struct {
	// NoTranslate disables the per-PC translation cache so the One
	// interface decodes every instruction (the paper's footnote-5
	// interpreted-simulation ablation).
	NoTranslate bool
	// NoDCE disables dead-code elimination of hidden-field computation
	// (ablation: where does the Min-detail win come from?).
	NoDCE bool
	// ForceRecords makes the Block interface produce per-instruction
	// records even when no field beyond the minimal set is visible.
	ForceRecords bool
	// MaxBlockLen bounds translated basic blocks (default 64 instructions).
	MaxBlockLen int
	// CacheCap bounds the translation caches (default 1<<16 entries).
	CacheCap int
}

// Sim is a functional simulator synthesized from one (spec, buildset)
// pair: the concrete artifact the single-specification principle derives.
type Sim struct {
	Spec   *lis.Spec
	BS     *lis.Buildset
	Layout *Layout
	// Warnings from interface analysis (read-before-write and similar).
	Warnings []string
	Opts     Options

	fslot       []int // field index -> frame slot (-1 for builtins)
	frameFields int
	frameSize   int

	dec      *decoder
	preSteps []preStep
	// genUnits[instr ID]: dynamically-dispatched compiled units (used by
	// the Step interface and the interpreted One path).
	genUnits  []*unit
	faultUnit *unit // ALL-actions-only unit for pre-decode faults

	// pubFr[i] is the frame slot published to Record.Vals[i].
	pubFr   []int
	pubWork uint32

	epOf      []int // step -> entrypoint ordinal
	hasDecode []bool
	lastEp    int
	instrSize uint64
	// emitRecs caches whether Block execution publishes per-instruction
	// records (visible fields beyond the minimal set, or ForceRecords), so
	// the dispatch loop does not recompute it per block.
	emitRecs bool

	// shared is the second-level translation cache: translated units and
	// blocks published across all Execs of this Sim (see transcache.go).
	// It is the only mutable state reachable from a Sim after Synthesize,
	// which is what makes one Sim safely shareable across goroutines.
	shared *sharedCache

	// localFields marks hidden fields the emitter demotes to per-function
	// locals in generated runner code (see localize.go). Computed once at
	// synthesis so emission stays deterministic and read-only.
	localFields map[string]bool
}

// undecoded marks a record whose instruction has not been decoded (yet) or
// failed to decode.
const undecoded = 0xffff

type preStep struct {
	step  int
	fetch bool
	run   stepFn // fused ALL actions at this step; may be nil
}

type seg struct {
	step int
	exc  bool
	run  stepFn
	work uint32
}

// unit is the compiled form of one instruction under one buildset, possibly
// specialized for a fixed PC (translated mode).
type unit struct {
	in     *lis.Instr
	segs   []seg
	excIdx int32
	epLo   []int32
	epHi   []int32
	work   uint32

	// Translated-mode extras. A unit is immutable once translate returns,
	// so it may be published in the Sim's shared cache and executed
	// concurrently; validity against a particular machine's memory is
	// established by the caller (bits comparison or page generation).
	pc     uint64
	physPC uint64
	bits   uint32
	id     uint16
	fall   uint64 // pc + instruction size
}

// Synthesize specializes spec for the named buildset and returns the
// resulting functional simulator.
func Synthesize(spec *lis.Spec, buildset string, opts Options) (s *Sim, err error) {
	bs := spec.Buildset(buildset)
	if bs == nil {
		return nil, fmt.Errorf("core: spec %q has no buildset %q", spec.Name, buildset)
	}
	if opts.MaxBlockLen <= 0 {
		opts.MaxBlockLen = 64
	}
	if opts.CacheCap <= 0 {
		opts.CacheCap = 1 << 16
	}
	// Compile errors arrive as *lis.Error panics from compiler.errf (see
	// the comment there); this recover is the other half of that protocol,
	// turning them into ordinary returned errors at the API boundary.
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*lis.Error); ok {
				err = le
				s = nil
				return
			}
			panic(r)
		}
	}()

	s = &Sim{
		Spec: spec, BS: bs, Layout: buildLayout(spec, bs), Opts: opts,
		instrSize: uint64(spec.InstrSize),
		shared:    newSharedCache(opts.CacheCap),
	}
	// Frame plan: every non-builtin field gets a private slot.
	s.fslot = make([]int, len(spec.Fields))
	for i, f := range spec.Fields {
		if f.Builtin {
			s.fslot[i] = -1
			continue
		}
		s.fslot[i] = s.frameFields
		s.frameFields++
	}
	s.frameSize = s.frameFields + maxLets(spec)

	// Publish plan.
	for _, name := range s.Layout.FieldNames() {
		f := spec.Field(name)
		s.pubFr = append(s.pubFr, s.fslot[f.Index])
	}
	s.pubWork = uint32(len(s.pubFr)) + 4
	s.emitRecs = s.Layout.NumSlots() > 0 || opts.ForceRecords

	// Entrypoint maps.
	s.epOf = make([]int, len(spec.Steps))
	for i := range s.epOf {
		s.epOf[i] = -1
	}
	s.hasDecode = make([]bool, len(bs.Entrypoints))
	for ei, ep := range bs.Entrypoints {
		for _, st := range ep.Steps {
			s.epOf[st] = ei
			if st == spec.DecodeStep {
				s.hasDecode[ei] = true
			}
		}
	}
	s.lastEp = len(bs.Entrypoints) - 1

	s.dec = buildDecoder(spec)
	s.buildPreSteps()

	// Compile the dynamically-dispatched unit for every instruction, and
	// run the interface checks.
	s.genUnits = make([]*unit, len(spec.Instrs))
	var errs []string
	for _, in := range spec.Instrs {
		ops := buildOps(spec, in)
		li := analyzeLiveness(bs, ops, false)
		if opts.NoDCE {
			li = liveAll(ops)
		}
		es, ws := checkInterface(spec, bs, in, ops, li)
		errs = append(errs, es...)
		s.Warnings = append(s.Warnings, ws...)
		s.genUnits[in.ID] = s.compileUnit(in, ops, li, nil)
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return nil, fmt.Errorf("core: interface errors in buildset %q:\n  %s", bs.Name, joinLines(errs))
	}
	s.faultUnit = s.compileFaultUnit()
	s.localFields = s.computeLocalFields()
	return s, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// liveAll marks every op and statement live (NoDCE ablation).
func liveAll(ops []iop) *liveInfo {
	li := &liveInfo{stmt: make(map[lis.Stmt]bool), op: make([]bool, len(ops))}
	var allStmt func(st lis.Stmt)
	allStmt = func(st lis.Stmt) {
		li.stmt[st] = true
		switch st := st.(type) {
		case *lis.Block:
			for _, s2 := range st.Stmts {
				allStmt(s2)
			}
		case *lis.IfStmt:
			allStmt(st.Then)
			if st.Else != nil {
				allStmt(st.Else)
			}
		}
	}
	for i := range ops {
		li.op[i] = true
		if ops[i].kind == opAction {
			allStmt(ops[i].act.Body)
		}
	}
	return li
}

// maxLets returns the largest number of let-locals any instruction can need
// (bounding the frame's scratch area).
func maxLets(spec *lis.Spec) int {
	var count func(st lis.Stmt) int
	count = func(st lis.Stmt) int {
		switch st := st.(type) {
		case *lis.Block:
			n := 0
			for _, s2 := range st.Stmts {
				n += count(s2)
			}
			return n
		case *lis.LetStmt:
			return 1
		case *lis.IfStmt:
			n := count(st.Then)
			if st.Else != nil {
				n += count(st.Else)
			}
			return n
		}
		return 0
	}
	max := 0
	for _, in := range spec.Instrs {
		n := 0
		for _, acts := range in.StepActions {
			for _, a := range acts {
				n += count(a.Body)
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// buildPreSteps compiles the engine's pre-decode sequence: per step before
// the decode step, the fused ALL actions plus the engine fetch.
func (s *Sim) buildPreSteps() {
	for st := 0; st < s.Spec.DecodeStep; st++ {
		ps := preStep{step: st, fetch: st == s.Spec.FetchStep}
		if acts := s.Spec.AllActions[st]; len(acts) > 0 {
			c := s.newCompiler(nil, liveAllActions(acts))
			var stmts []cstmt
			for _, a := range acts {
				if cs, cf := c.compileBlock(a.Body); cs != nil {
					stmts = append(stmts, cstmt{run: cs, canFault: cf})
				}
			}
			ps.run, _ = fuse(stmts)
		}
		if ps.fetch || ps.run != nil {
			s.preSteps = append(s.preSteps, ps)
		}
	}
}

// liveAllActions builds a liveInfo marking everything in the given actions
// live (pre-decode ALL actions are not subject to DCE).
func liveAllActions(acts []*lis.Action) *liveInfo {
	ops := make([]iop, len(acts))
	for i, a := range acts {
		ops[i] = iop{kind: opAction, act: a}
	}
	return liveAll(ops)
}

func (s *Sim) newCompiler(in *lis.Instr, li *liveInfo) *compiler {
	return &compiler{sim: s, in: in, li: li, letSlots: make(map[*lis.Local]int)}
}

// compileUnit compiles one instruction's post-decode program. tc, when
// non-nil, supplies translated-mode constants.
type transCtx struct {
	pc   uint64
	bits uint32
}

func (s *Sim) compileUnit(in *lis.Instr, ops []iop, li *liveInfo, tc *transCtx) *unit {
	c := s.newCompiler(in, li)
	if tc != nil {
		c.constPC, c.pc = true, tc.pc
		c.constBits, c.bits = true, tc.bits
	}
	u := &unit{in: in, excIdx: -1}
	// Group live ops by step, tracking emitted work per step.
	byStep := make(map[int][]cstmt)
	stepWork := make(map[int]int)
	var stepOrder []int
	for i, op := range ops {
		if !li.op[i] {
			continue
		}
		w0 := c.work
		var cs cstmt
		if op.kind == opAction {
			run, cf := c.compileBlock(op.act.Body)
			if run == nil {
				continue
			}
			cs = cstmt{run: run, canFault: cf}
		} else {
			cs = c.compileOp(op)
		}
		if _, seen := byStep[op.step]; !seen {
			stepOrder = append(stepOrder, op.step)
		}
		byStep[op.step] = append(byStep[op.step], cs)
		stepWork[op.step] += c.work - w0
	}
	sort.Ints(stepOrder)
	for _, st := range stepOrder {
		run, _ := fuse(byStep[st])
		if run == nil {
			continue
		}
		u.segs = append(u.segs, seg{
			step: st, exc: st == s.Spec.ExcStep, run: run,
			work: uint32(stepWork[st] + len(byStep[st])),
		})
	}
	for i := range u.segs {
		if u.segs[i].exc {
			u.excIdx = int32(i)
		}
		u.work += u.segs[i].work
	}
	u.work += 2 // dispatch overhead
	// Entrypoint ranges over segs (segs are in ascending step order and
	// entrypoints partition steps in order).
	nEp := len(s.BS.Entrypoints)
	u.epLo = make([]int32, nEp)
	u.epHi = make([]int32, nEp)
	for e := 0; e < nEp; e++ {
		lo, hi := 0, 0
		found := false
		for i, sg := range u.segs {
			if s.epOf[sg.step] == e {
				if !found {
					lo = i
					found = true
				}
				hi = i + 1
			}
		}
		u.epLo[e], u.epHi[e] = int32(lo), int32(hi)
	}
	return u
}

// compileFaultUnit builds a unit containing only ALL actions (used when a
// fault occurs before decode identifies the instruction).
func (s *Sim) compileFaultUnit() *unit {
	spec := s.Spec
	var ops []iop
	for st := spec.DecodeStep; st < len(spec.Steps); st++ {
		for _, a := range spec.AllActions[st] {
			ops = append(ops, iop{kind: opAction, step: st, act: a})
		}
	}
	return s.compileUnit(nil, ops, liveAll(ops), nil)
}

// ---- decoder ----

type decoder struct {
	common  uint32
	buckets map[uint32][]decEntry
}

type decEntry struct {
	mask, val uint32
	id        uint16
}

func buildDecoder(spec *lis.Spec) *decoder {
	d := &decoder{buckets: make(map[uint32][]decEntry)}
	if len(spec.Instrs) == 0 {
		return d
	}
	d.common = ^uint32(0)
	for _, in := range spec.Instrs {
		d.common &= uint32(in.Mask)
	}
	for _, in := range spec.Instrs {
		key := uint32(in.Value) & d.common
		d.buckets[key] = append(d.buckets[key], decEntry{
			mask: uint32(in.Mask), val: uint32(in.Value), id: uint16(in.ID),
		})
	}
	return d
}

// Decodes reports whether bits decode to some instruction of the spec.
// Fault-injection harnesses use it to find corrupted encodings that are
// guaranteed to divert to the pre-decode fault path (FaultIllegal through
// the ALL-actions faultUnit) rather than silently executing as a different
// valid instruction.
func (s *Sim) Decodes(bits uint32) bool { return s.dec.decode(bits) >= 0 }

// decode returns the instruction ID for an encoding, or -1.
func (d *decoder) decode(bits uint32) int {
	for _, e := range d.buckets[bits&d.common] {
		if bits&e.mask == e.val {
			return int(e.id)
		}
	}
	return -1
}

// ---- execution ----

// Exec is one execution context of a synthesized simulator bound to a
// machine: it owns the frame (private field storage), the translation
// caches, and the work counter.
type Exec struct {
	M   *mach.Machine
	sim *Sim

	// Working copies of the builtin fields during an instruction.
	pc      uint64
	physPC  uint64
	nextPC  uint64
	bits    uint32
	instrID uint16
	fault   mach.Fault
	nullify bool

	fr     []uint64
	spaces []*mach.Space

	// First-level translation caches, private to this Exec (and therefore
	// to its goroutine: an Exec, like its Machine, is confined to one
	// goroutine at a time). They are direct-mapped open-addressed tables
	// (see l1cache.go): entries pair a translated product with the page
	// generation and code-store epoch of this machine's memory at
	// validation time, so self-modifying code invalidates locally without
	// touching the shared cache. Tables are allocated lazily on first use
	// so a One-interface Exec never pays for a block table and vice versa.
	utab utab
	btab btab

	// lastB is the block-table slot of the most recently retired block, or
	// -1 when the previous dispatch cannot anchor a chain link (cold start,
	// fault, dynamic fallback, flush). ExecBlock uses it to follow and to
	// install block->block chain links.
	lastB int32

	// noTrans mirrors Options.NoTranslate (the interpreted-One ablation).
	noTrans bool

	// varena backs Record.Vals allocations in publish: values are carved
	// from one chunk so steady-state publication does not allocate per
	// record. Records own their sub-slices; the arena is append-only and
	// replaced wholesale when exhausted.
	varena []uint64

	work  uint64
	stats ExecStats
}

// ExecStats counts the translation-cache events of one Exec. The fields
// are plain integers — an Exec is confined to one goroutine — and they
// are bumped on paths that already probe a map, so the counting is always
// on. The experiment engine drains them per cell into its obs registry.
type ExecStats struct {
	// Unit (per-instruction translation) cache events.
	UnitL1Hits         uint64 // first-level hits (epoch or generation still valid)
	UnitL1GenEvictions uint64 // entries dropped on a page-generation mismatch
	UnitL1Conflicts    uint64 // entries evicted by a different PC mapping to the slot
	UnitL1Flushes      uint64 // wholesale first-level flushes (FlushLocal stamp bumps)
	UnitSharedHits     uint64 // second-level (shared, bits-validated) hits
	UnitTranslations   uint64 // fresh translations published to the shared cache

	// Block cache events (the Block interface's translated basic blocks).
	BlockL1Hits         uint64
	BlockL1GenEvictions uint64
	BlockL1Conflicts    uint64
	BlockL1Flushes      uint64
	BlockSharedHits     uint64
	BlockSharedStale    uint64 // shared blocks rejected by per-unit bits validation
	BlockBuilds         uint64 // fresh blocks built and published

	// Block chaining events: links installed between a retired block's
	// table slot and its observed successor, and dispatches resolved by
	// following such a link (skipping the table lookup entirely).
	BlockChainLinks   uint64
	BlockChainFollows uint64
}

// Merge adds o's counts into s, field by field.
func (s *ExecStats) Merge(o ExecStats) {
	s.UnitL1Hits += o.UnitL1Hits
	s.UnitL1GenEvictions += o.UnitL1GenEvictions
	s.UnitL1Conflicts += o.UnitL1Conflicts
	s.UnitL1Flushes += o.UnitL1Flushes
	s.UnitSharedHits += o.UnitSharedHits
	s.UnitTranslations += o.UnitTranslations
	s.BlockL1Hits += o.BlockL1Hits
	s.BlockL1GenEvictions += o.BlockL1GenEvictions
	s.BlockL1Conflicts += o.BlockL1Conflicts
	s.BlockL1Flushes += o.BlockL1Flushes
	s.BlockSharedHits += o.BlockSharedHits
	s.BlockSharedStale += o.BlockSharedStale
	s.BlockBuilds += o.BlockBuilds
	s.BlockChainLinks += o.BlockChainLinks
	s.BlockChainFollows += o.BlockChainFollows
}

// Stats returns the Exec's accumulated translation-cache counts.
func (x *Exec) Stats() ExecStats { return x.stats }

// NewExec binds the simulator to a machine. The machine's journal is
// enabled iff the buildset declares speculation support.
func (s *Sim) NewExec(m *mach.Machine) *Exec {
	m.JournalOn = s.BS.Spec
	x := &Exec{M: m, sim: s, fr: make([]uint64, s.frameSize), lastB: -1,
		noTrans: s.Opts.NoTranslate}
	x.spaces = make([]*mach.Space, len(s.Spec.Spaces))
	for i, sp := range s.Spec.Spaces {
		x.spaces[i] = m.MustSpace(sp.Name)
	}
	return x
}

// Work returns the accumulated deterministic work units (compiled node
// executions plus record publish costs).
func (x *Exec) Work() uint64 { return x.work }

// FlushLocal drops the Exec's first-level translation caches. Callers that
// rewrite machine memory behind the Exec's back — checkpoint restore — use
// it to guarantee no stale translation survives, independent of the
// page-generation arithmetic that normally invalidates entries. The shared
// second-level cache needs no flush: its entries are bits-validated on
// every hit.
//
// The flush is O(1) and allocation-free: bumping the table stamps
// invalidates every slot (including all chain links, which live in block
// slots) without touching the slot storage.
func (x *Exec) FlushLocal() {
	x.utab.stamp++
	x.btab.stamp++
	x.lastB = -1
	if x.utab.slots != nil {
		x.stats.UnitL1Flushes++
	}
	if x.btab.slots != nil {
		x.stats.BlockL1Flushes++
	}
}

// Sim returns the simulator this context executes.
func (x *Exec) Sim() *Sim { return x.sim }

// runSegs executes segments [lo, hi) of a unit with fault diversion to the
// exception segment and nullify (predication) short-circuiting.
func (x *Exec) runSegs(u *unit, lo, hi int32) {
	for i := lo; i < hi; i++ {
		sg := &u.segs[i]
		if x.fault != mach.FaultNone {
			if u.excIdx >= i && u.excIdx < hi {
				i = u.excIdx
				sg = &u.segs[i]
			} else {
				return
			}
		} else if x.nullify && !sg.exc {
			return
		}
		sg.run(x)
	}
}

// publish copies the working state into the record: the fixed header plus
// the buildset-visible fields. Its cost scales with informational detail —
// the "many additional stores" of the paper's §V-E analysis.
func (x *Exec) publish(rec *Record) {
	rec.Ctx = x.M.CtxID
	rec.PC = x.pc
	rec.PhysPC = x.physPC
	rec.NextPC = x.nextPC
	rec.InstrBits = x.bits
	rec.InstrID = x.instrID
	rec.Fault = x.fault
	rec.Nullified = x.nullify
	pub := x.sim.pubFr
	if len(pub) == 0 {
		// Min-visibility buildsets publish only the fixed header; skip the
		// value loop (and any Vals storage management) entirely.
		rec.Vals = rec.Vals[:0]
		x.work += uint64(x.sim.pubWork)
		return
	}
	if cap(rec.Vals) < len(pub) {
		rec.Vals = x.arenaVals(len(pub))
	} else {
		rec.Vals = rec.Vals[:len(pub)]
	}
	for i, fs := range pub {
		rec.Vals[i] = x.fr[fs]
	}
	x.work += uint64(x.sim.pubWork)
}

// arenaVals carves an n-slot value buffer out of the Exec's arena, so
// records that must grow their Vals do not pay one allocation each. The
// returned slice is full-length and capacity-clipped: appends by a consumer
// can never bleed into a neighbouring record's values.
func (x *Exec) arenaVals(n int) []uint64 {
	const arenaChunk = 4096
	if len(x.varena)+n > cap(x.varena) {
		c := arenaChunk
		if n > c {
			c = n
		}
		x.varena = make([]uint64, 0, c)
	}
	lo := len(x.varena)
	x.varena = x.varena[:lo+n]
	return x.varena[lo : lo+n : lo+n]
}

// importRec loads the working state from a record at a Step-interface call
// boundary; the timing simulator may have modified any visible value in
// between (that is the point of high semantic detail). Hidden frame storage
// does not survive across entrypoints.
func (x *Exec) importRec(rec *Record) {
	x.pc = rec.PC
	x.physPC = rec.PhysPC
	x.nextPC = rec.NextPC
	x.bits = rec.InstrBits
	x.instrID = rec.InstrID
	x.fault = rec.Fault
	x.nullify = rec.Nullified
	for i := range x.fr {
		x.fr[i] = 0
	}
	pub := x.sim.pubFr
	if len(rec.Vals) == len(pub) {
		for i, fs := range pub {
			x.fr[fs] = rec.Vals[i]
		}
	}
	x.work += uint64(x.sim.pubWork)
}

func (x *Exec) fetchBits() {
	v, f := x.M.Mem.Load(x.physPC, x.sim.Spec.InstrSize)
	if f != mach.FaultNone {
		x.fault = f
		return
	}
	x.bits = uint32(v)
}

func (x *Exec) decode() *unit {
	id := x.sim.dec.decode(x.bits)
	if id < 0 {
		x.fault = mach.FaultIllegal
		x.instrID = undecoded
		return x.sim.faultUnit
	}
	x.instrID = uint16(id)
	return x.sim.genUnits[id]
}

// commit retires the instruction: advances the architectural PC and the
// retired-instruction counter. Faulting (or halting) instructions do not
// retire.
func (x *Exec) commit() {
	if x.fault != mach.FaultNone {
		return
	}
	x.M.PC = x.nextPC
	x.M.Instret++
}

func (x *Exec) initInstr(pc uint64) {
	x.pc = pc
	x.physPC = pc
	x.nextPC = pc + x.sim.instrSize
	x.bits = 0
	x.instrID = undecoded
	x.fault = mach.FaultNone
	x.nullify = false
}

// ExecOne executes one instruction at the machine's PC through the One
// (call-per-instruction) interface, publishing into rec. It reports false
// when the machine has halted (or a fault stopped execution).
func (x *Exec) ExecOne(rec *Record) bool {
	if !x.noTrans {
		return x.execOneTranslated(rec)
	}
	return x.execOneDynamic(rec)
}

func (x *Exec) execOneDynamic(rec *Record) bool {
	x.initInstr(x.M.PC)
	var u *unit
	for _, ps := range x.sim.preSteps {
		if x.fault != mach.FaultNone {
			break
		}
		if ps.run != nil {
			ps.run(x)
		}
		if ps.fetch {
			x.fetchBits()
		}
	}
	if x.fault == mach.FaultNone {
		if x.sim.Spec.FetchStep == x.sim.Spec.DecodeStep && !x.fetchedInPre() {
			x.fetchBits()
		}
		if x.fault == mach.FaultNone {
			u = x.decode()
		}
	}
	if u == nil {
		u = x.sim.faultUnit
	}
	x.runSegs(u, 0, int32(len(u.segs)))
	x.work += uint64(u.work)
	x.publish(rec)
	x.commit()
	return x.fault == mach.FaultNone
}

// fetchedInPre reports whether the pre-step sequence already fetched.
func (x *Exec) fetchedInPre() bool {
	for _, ps := range x.sim.preSteps {
		if ps.fetch {
			return true
		}
	}
	return false
}

func (x *Exec) execOneTranslated(rec *Record) bool {
	pc := x.M.PC
	u := x.transUnit(pc)
	if u == nil {
		// Fetch fault or undecodable instruction: take the dynamic path,
		// which raises and records the fault.
		return x.execOneDynamic(rec)
	}
	x.pc = pc
	x.physPC = u.physPC
	x.nextPC = u.fall
	x.bits = u.bits
	x.instrID = u.id
	x.fault = mach.FaultNone
	x.nullify = false
	for _, ps := range x.sim.preSteps {
		if ps.run != nil {
			ps.run(x)
		}
	}
	if x.fault == mach.FaultNone && !x.nullify {
		// Inline segment dispatch (see ExecBlock): the runSegs entry checks
		// cannot fire, so the common path is one closure call plus one
		// combined check per segment; a mid-unit fault or nullification
		// (rare) resumes through runSegs for exception diversion.
		segs := u.segs
		for i := range segs {
			segs[i].run(x)
			if x.fault != mach.FaultNone || x.nullify {
				x.runSegs(u, int32(i+1), int32(len(segs)))
				break
			}
		}
	} else {
		x.runSegs(u, 0, int32(len(u.segs)))
	}
	x.work += uint64(u.work)
	x.publish(rec)
	x.commit()
	return x.fault == mach.FaultNone
}

// transUnit returns the translated unit at pc, translating on miss. nil
// means the instruction cannot be fetched or decoded. The lookup order is
// first-level (private direct-map table, epoch/generation-validated), then
// the Sim's shared cache (bits-validated), then a fresh translation
// published to both levels.
func (x *Exec) transUnit(pc uint64) *unit {
	t := &x.utab
	if t.slots == nil {
		t.init(x.sim.Opts.CacheCap)
	}
	mem := x.M.Mem
	s := &t.slots[t.idx(pc)]
	if s.stamp == t.stamp && s.pc == pc {
		// Epoch first: no store has touched any code page, so the cached
		// unit is valid without even walking to pc's page.
		cg := mem.CodeGen()
		if s.epoch == cg {
			x.stats.UnitL1Hits++
			return s.u
		}
		if s.gen == mem.Gen(pc) {
			s.epoch = cg
			x.stats.UnitL1Hits++
			return s.u
		}
		x.stats.UnitL1GenEvictions++
	} else if s.stamp == t.stamp && s.u != nil {
		x.stats.UnitL1Conflicts++
	}
	size := x.sim.Spec.InstrSize
	v, gen, f := mem.LoadGen(pc, size)
	if f != mach.FaultNone {
		return nil
	}
	bits := uint32(v)
	u := x.sim.shared.lookupUnit(pc, bits)
	if u == nil {
		id := x.sim.dec.decode(bits)
		if id < 0 {
			return nil
		}
		in := x.sim.Spec.Instrs[id]
		u = x.sim.translate(in, pc, bits)
		x.stats.UnitTranslations++
		x.sim.shared.insertUnit(pc, u)
	} else {
		x.stats.UnitSharedHits++
	}
	if pc&uint64(mach.PageSize()-1)+uint64(size) > uint64(mach.PageSize()) {
		// A fetch straddling a page boundary is validated by a single
		// page generation, which cannot witness stores to the second
		// page; leave it uncached rather than risk staleness.
		return u
	}
	// Mark pc's page as code BEFORE capturing the epoch, so every later
	// store to it is guaranteed to advance the epoch this slot records.
	mem.MarkCode(pc)
	*s = uslot{pc: pc, gen: gen, epoch: mem.CodeGen(), stamp: t.stamp, u: u}
	return u
}

// translate compiles an instruction specialized for a fixed PC and
// encoding: the engine's analogue of the paper's binary translation.
func (s *Sim) translate(in *lis.Instr, pc uint64, bits uint32) *unit {
	ops := buildOps(s.Spec, in)
	li := analyzeLiveness(s.BS, ops, true)
	if s.Opts.NoDCE {
		li = liveAll(ops)
	}
	u := s.compileUnit(in, ops, li, &transCtx{pc: pc, bits: bits})
	u.pc = pc
	u.physPC = pc
	u.bits = bits
	u.id = uint16(in.ID)
	u.fall = pc + s.instrSize
	return u
}

// StepCall executes one entrypoint of a Step-interface buildset. The caller
// owns the record across the instruction's calls: set rec.PC before
// entrypoint 0, then call each entrypoint in order. Between calls the
// timing simulator may read and modify any visible value — that is the
// semantic control high-detail interfaces exist for.
func (x *Exec) StepCall(ep int, rec *Record) {
	s := x.sim
	if ep == 0 {
		x.initInstr(rec.PC)
		for i := range x.fr {
			x.fr[i] = 0
		}
	} else {
		x.importRec(rec)
	}
	for _, ps := range s.preSteps {
		if s.epOf[ps.step] != ep || x.fault != mach.FaultNone {
			continue
		}
		if ps.run != nil {
			ps.run(x)
		}
		if ps.fetch {
			x.fetchBits()
		}
	}
	var u *unit
	if s.hasDecode[ep] {
		if x.fault == mach.FaultNone {
			if s.Spec.FetchStep == s.Spec.DecodeStep && !x.fetchedInPre() {
				x.fetchBits()
			}
		}
		if x.fault == mach.FaultNone {
			u = x.decode()
		} else {
			u = s.faultUnit
		}
	} else if x.instrID != undecoded && int(x.instrID) < len(s.genUnits) {
		u = s.genUnits[x.instrID]
	} else {
		u = s.faultUnit
	}
	x.runSegs(u, u.epLo[ep], u.epHi[ep])
	for i := u.epLo[ep]; i < u.epHi[ep]; i++ {
		x.work += uint64(u.segs[i].work)
	}
	x.publish(rec)
	if ep == s.lastEp {
		x.commit()
	}
}

// ExecOneStepwise drives all entrypoints of a Step buildset in order for
// the instruction at the machine's PC — the convenience path for drivers
// that do not interleave instructions.
func (x *Exec) ExecOneStepwise(rec *Record) bool {
	rec.PC = x.M.PC
	for ep := range x.sim.BS.Entrypoints {
		x.StepCall(ep, rec)
	}
	return rec.Fault == mach.FaultNone
}
