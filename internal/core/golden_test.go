package core_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
)

// Golden-file tests for EmitSpecialized — the emitter behind `lisc -emit`.
// Specialization regressions (field placement, dead-code elimination,
// record inlining) show up as textual diffs against the checked-in goldens.
// Regenerate with:
//
//	go test ./internal/core/ -run TestEmitSpecializedGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden emit files")

// goldenCases covers one Block/Min, one One/Decode, and one Step/All
// buildset per ISA, each emitting a representative ALU instruction.
var goldenCases = []struct {
	isa      string
	buildset string
	instr    string
}{
	{"alpha64", "block_min", "ADDQ"},
	{"alpha64", "one_decode", "ADDQ"},
	{"alpha64", "step_all", "ADDQ"},
	{"arm32", "block_min", "ADD"},
	{"arm32", "one_decode", "ADD"},
	{"arm32", "step_all", "ADD"},
	{"ppc32", "block_min", "ADD"},
	{"ppc32", "one_decode", "ADD"},
	{"ppc32", "step_all", "ADD"},
}

func TestEmitSpecializedGolden(t *testing.T) {
	for _, tc := range goldenCases {
		name := fmt.Sprintf("%s/%s", tc.isa, tc.buildset)
		t.Run(name, func(t *testing.T) {
			i, err := isa.Load(tc.isa)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := core.Synthesize(i.Spec, tc.buildset, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := sim.EmitSpecialized(tc.instr)
			if got == "" {
				t.Fatalf("EmitSpecialized(%q) returned nothing", tc.instr)
			}
			path := filepath.Join("testdata", "emit", tc.isa+"_"+tc.buildset+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("emit output for %s/%s/%s changed; run with -update if intentional.\n--- got\n%s\n--- want\n%s",
					tc.isa, tc.buildset, tc.instr, got, want)
			}
		})
	}
}
