package core

import (
	"fmt"
	"math/bits"

	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// The compiler lowers resolved action ASTs and generated operand ops into
// trees of closures over *Exec. Specialization per buildset happens here:
// hidden fields resolve to frame slots, dead statements (per liveness) are
// dropped, and in translated mode the PC and instruction bits are
// compile-time constants so operand decode folds away entirely.

type evalFn func(*Exec) uint64
type stepFn func(*Exec)

type compiler struct {
	sim *Sim
	in  *lis.Instr
	li  *liveInfo

	// Translated-mode constants.
	constPC   bool
	pc        uint64
	constBits bool
	bits      uint32

	letSlots map[*lis.Local]int
	nextLet  int

	work int // closure nodes emitted (deterministic work-unit accounting)
}

// errf reports a compile error by panicking with a *lis.Error. This is the
// compiler's internal error protocol: compilation recurses deeply through
// expression trees, and threading an error return through every emit helper
// would dominate the code. Synthesize's deferred recover converts exactly
// this panic type back into a returned error at the API boundary (any other
// panic value is re-raised), so no *lis.Error panic ever escapes the
// package. New code inside the compiler should call errf rather than
// returning errors; code outside the compile path must not rely on this
// protocol.
func (c *compiler) errf(pos lis.Pos, format string, args ...any) {
	panic(&lis.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// value is a possibly-constant compiled expression.
type value struct {
	fn  evalFn
	c   uint64
	isC bool
}

func constVal(v uint64) value { return value{c: v, isC: true} }

func (v value) force() evalFn {
	if v.isC {
		k := v.c
		return func(*Exec) uint64 { return k }
	}
	return v.fn
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// compileExpr lowers an expression, folding constants.
func (c *compiler) compileExpr(e lis.Expr) value {
	switch e := e.(type) {
	case *lis.NumExpr:
		return constVal(e.Val)
	case *lis.IdentExpr:
		return c.compileIdent(e)
	case *lis.UnaryExpr:
		x := c.compileExpr(e.X)
		if x.isC {
			return constVal(lis.EvalUnaryOp(e.Op, x.c))
		}
		xf := x.fn
		c.work++
		switch e.Op {
		case lis.OpNeg:
			return value{fn: func(x *Exec) uint64 { return -xf(x) }}
		case lis.OpInv:
			return value{fn: func(x *Exec) uint64 { return ^xf(x) }}
		default: // OpNot
			return value{fn: func(x *Exec) uint64 { return b2u(xf(x) == 0) }}
		}
	case *lis.BinaryExpr:
		return c.compileBinary(e)
	case *lis.CondExpr:
		cc := c.compileExpr(e.C)
		if cc.isC {
			if cc.c != 0 {
				return c.compileExpr(e.A)
			}
			return c.compileExpr(e.B)
		}
		af := c.compileExpr(e.A).force()
		bf := c.compileExpr(e.B).force()
		cf := cc.fn
		c.work++
		return value{fn: func(x *Exec) uint64 {
			if cf(x) != 0 {
				return af(x)
			}
			return bf(x)
		}}
	case *lis.CallExpr:
		return c.compileCall(e)
	}
	c.errf(e.Position(), "internal: unknown expression")
	return value{}
}

func (c *compiler) compileBinary(e *lis.BinaryExpr) value {
	return c.binaryVal(e, c.compileExpr(e.L), c.compileExpr(e.R))
}

// binaryVal builds the closure for a binary expression from its already
// compiled operands (compileStmt compiles if-condition operands itself so
// it can fuse the comparison into the branch closure).
func (c *compiler) binaryVal(e *lis.BinaryExpr, l, r value) value {
	if l.isC && r.isC {
		return constVal(lis.EvalBinaryOp(e.Op, l.c, r.c))
	}
	c.work++
	// One constant side is common after translation folds PCs and encoding
	// fields; skipping its closure saves an indirect call per evaluation.
	if r.isC {
		k := r.c
		lf := l.force()
		switch e.Op {
		case lis.OpAdd:
			return value{fn: func(x *Exec) uint64 { return lf(x) + k }}
		case lis.OpSub:
			return value{fn: func(x *Exec) uint64 { return lf(x) - k }}
		case lis.OpAnd:
			return value{fn: func(x *Exec) uint64 { return lf(x) & k }}
		case lis.OpOr:
			return value{fn: func(x *Exec) uint64 { return lf(x) | k }}
		case lis.OpXor:
			return value{fn: func(x *Exec) uint64 { return lf(x) ^ k }}
		case lis.OpEq:
			return value{fn: func(x *Exec) uint64 { return b2u(lf(x) == k) }}
		case lis.OpNe:
			return value{fn: func(x *Exec) uint64 { return b2u(lf(x) != k) }}
		case lis.OpLt:
			return value{fn: func(x *Exec) uint64 { return b2u(lf(x) < k) }}
		}
	} else if l.isC {
		k := l.c
		rf := r.force()
		switch e.Op {
		case lis.OpAdd:
			return value{fn: func(x *Exec) uint64 { return k + rf(x) }}
		case lis.OpSub:
			return value{fn: func(x *Exec) uint64 { return k - rf(x) }}
		case lis.OpAnd:
			return value{fn: func(x *Exec) uint64 { return k & rf(x) }}
		case lis.OpOr:
			return value{fn: func(x *Exec) uint64 { return k | rf(x) }}
		case lis.OpXor:
			return value{fn: func(x *Exec) uint64 { return k ^ rf(x) }}
		case lis.OpEq:
			return value{fn: func(x *Exec) uint64 { return b2u(k == rf(x)) }}
		case lis.OpNe:
			return value{fn: func(x *Exec) uint64 { return b2u(k != rf(x)) }}
		case lis.OpLt:
			return value{fn: func(x *Exec) uint64 { return b2u(k < rf(x)) }}
		}
	}
	lf := l.force()
	rf := r.force()
	// Specialize the hottest operators; fall back to the shared evaluator.
	switch e.Op {
	case lis.OpAdd:
		return value{fn: func(x *Exec) uint64 { return lf(x) + rf(x) }}
	case lis.OpSub:
		return value{fn: func(x *Exec) uint64 { return lf(x) - rf(x) }}
	case lis.OpMul:
		return value{fn: func(x *Exec) uint64 { return lf(x) * rf(x) }}
	case lis.OpAnd:
		return value{fn: func(x *Exec) uint64 { return lf(x) & rf(x) }}
	case lis.OpOr:
		return value{fn: func(x *Exec) uint64 { return lf(x) | rf(x) }}
	case lis.OpXor:
		return value{fn: func(x *Exec) uint64 { return lf(x) ^ rf(x) }}
	case lis.OpEq:
		return value{fn: func(x *Exec) uint64 { return b2u(lf(x) == rf(x)) }}
	case lis.OpNe:
		return value{fn: func(x *Exec) uint64 { return b2u(lf(x) != rf(x)) }}
	case lis.OpLt:
		return value{fn: func(x *Exec) uint64 { return b2u(lf(x) < rf(x)) }}
	case lis.OpShl:
		if r.isC && r.c < 64 {
			k := r.c
			return value{fn: func(x *Exec) uint64 { return lf(x) << k }}
		}
	case lis.OpShr:
		if r.isC && r.c < 64 {
			k := r.c
			return value{fn: func(x *Exec) uint64 { return lf(x) >> k }}
		}
	case lis.OpLand:
		return value{fn: func(x *Exec) uint64 {
			if lf(x) == 0 {
				return 0
			}
			return b2u(rf(x) != 0)
		}}
	case lis.OpLor:
		return value{fn: func(x *Exec) uint64 {
			if lf(x) != 0 {
				return 1
			}
			return b2u(rf(x) != 0)
		}}
	}
	op := e.Op
	return value{fn: func(x *Exec) uint64 { return lis.EvalBinaryOp(op, lf(x), rf(x)) }}
}

// fuseCondThen builds an if-then closure with a comparison (or conjunction)
// condition evaluated inline, eliminating the condition closure's indirect
// call. Semantics match the generic cond-then pair exactly: both comparison
// operands are always evaluated (their effects must fire), and && / ||
// short-circuit the same way the standalone condition closures do. Returns
// nil for condition operators that are not worth fusing.
func fuseCondThen(op lis.Op, l, r value, tf stepFn) stepFn {
	switch op {
	case lis.OpEq:
		if r.isC {
			k, lf := r.c, l.force()
			return func(x *Exec) {
				if lf(x) == k {
					tf(x)
				}
			}
		}
		if l.isC {
			k, rf := l.c, r.force()
			return func(x *Exec) {
				if rf(x) == k {
					tf(x)
				}
			}
		}
		lf, rf := l.force(), r.force()
		return func(x *Exec) {
			if lf(x) == rf(x) {
				tf(x)
			}
		}
	case lis.OpNe:
		if r.isC {
			k, lf := r.c, l.force()
			return func(x *Exec) {
				if lf(x) != k {
					tf(x)
				}
			}
		}
		if l.isC {
			k, rf := l.c, r.force()
			return func(x *Exec) {
				if rf(x) != k {
					tf(x)
				}
			}
		}
		lf, rf := l.force(), r.force()
		return func(x *Exec) {
			if lf(x) != rf(x) {
				tf(x)
			}
		}
	case lis.OpLt:
		if r.isC {
			k, lf := r.c, l.force()
			return func(x *Exec) {
				if lf(x) < k {
					tf(x)
				}
			}
		}
		if l.isC {
			k, rf := l.c, r.force()
			return func(x *Exec) {
				if k < rf(x) {
					tf(x)
				}
			}
		}
		lf, rf := l.force(), r.force()
		return func(x *Exec) {
			if lf(x) < rf(x) {
				tf(x)
			}
		}
	case lis.OpLand:
		lf, rf := l.force(), r.force()
		return func(x *Exec) {
			if lf(x) != 0 && rf(x) != 0 {
				tf(x)
			}
		}
	case lis.OpLor:
		lf, rf := l.force(), r.force()
		return func(x *Exec) {
			if lf(x) != 0 || rf(x) != 0 {
				tf(x)
			}
		}
	}
	return nil
}

func (c *compiler) compileIdent(e *lis.IdentExpr) value {
	switch e.Ref {
	case lis.RefConst:
		return constVal(e.Sym.(*lis.Const).Val)
	case lis.RefLocal:
		slot, ok := c.letSlots[e.Sym.(*lis.Local)]
		if !ok {
			c.errf(e.Pos, "internal: local '%s' has no slot", e.Name)
		}
		c.work++
		return value{fn: func(x *Exec) uint64 { return x.fr[slot] }}
	case lis.RefEncoding:
		ff := c.in.Format.Field(e.Name)
		if ff == nil {
			c.errf(e.Pos, "internal: encoding field '%s' missing from format", e.Name)
		}
		return c.encValue(ff)
	case lis.RefField:
		return c.readField(e.Sym.(*lis.Field), e.Pos)
	}
	c.errf(e.Pos, "internal: unresolved identifier '%s'", e.Name)
	return value{}
}

// encValue extracts an encoding bitfield (constant-folded in translated
// mode — the paper's binary-translation decode hoisting).
func (c *compiler) encValue(ff *lis.FmtField) value {
	lo, w := uint(ff.Lo), uint(ff.Width())
	mask := uint32(1)<<w - 1
	if c.constBits {
		return constVal(uint64(c.bits >> lo & mask))
	}
	c.work++
	return value{fn: func(x *Exec) uint64 { return uint64(x.bits >> lo & mask) }}
}

func (c *compiler) readField(f *lis.Field, pos lis.Pos) value {
	if f.Builtin {
		c.work++
		switch f.Name {
		case lis.FieldPC:
			if c.constPC {
				c.work--
				return constVal(c.pc)
			}
			return value{fn: func(x *Exec) uint64 { return x.pc }}
		case lis.FieldPhysPC:
			return value{fn: func(x *Exec) uint64 { return x.physPC }}
		case lis.FieldInstrBits:
			if c.constBits {
				c.work--
				return constVal(uint64(c.bits))
			}
			return value{fn: func(x *Exec) uint64 { return uint64(x.bits) }}
		case lis.FieldNextPC:
			return value{fn: func(x *Exec) uint64 { return x.nextPC }}
		case lis.FieldFault:
			return value{fn: func(x *Exec) uint64 { return uint64(x.fault) }}
		case lis.FieldCtx:
			return value{fn: func(x *Exec) uint64 { return uint64(x.M.CtxID) }}
		case lis.FieldOpcode:
			return value{fn: func(x *Exec) uint64 { return uint64(x.instrID) }}
		case lis.FieldNullify:
			return value{fn: func(x *Exec) uint64 { return b2u(x.nullify) }}
		}
		c.errf(pos, "internal: unknown builtin field '%s'", f.Name)
	}
	slot := c.sim.fslot[f.Index]
	c.work++
	return value{fn: func(x *Exec) uint64 { return x.fr[slot] }}
}

// assignField returns a closure storing v into field f's working storage.
func (c *compiler) assignField(f *lis.Field, v value, pos lis.Pos) stepFn {
	c.work++
	if f.Builtin {
		if v.isC {
			// Constant RHS (translated branch targets, fixed fault codes):
			// store the value directly, no closure call.
			k := v.c
			switch f.Name {
			case lis.FieldPhysPC:
				return func(x *Exec) { x.physPC = k }
			case lis.FieldNextPC:
				return func(x *Exec) { x.nextPC = k }
			case lis.FieldFault:
				kf := mach.Fault(k)
				return func(x *Exec) { x.fault = kf }
			case lis.FieldNullify:
				kb := k != 0
				return func(x *Exec) { x.nullify = kb }
			}
		}
		vf := v.force()
		switch f.Name {
		case lis.FieldPhysPC:
			return func(x *Exec) { x.physPC = vf(x) }
		case lis.FieldNextPC:
			return func(x *Exec) { x.nextPC = vf(x) }
		case lis.FieldFault:
			return func(x *Exec) { x.fault = mach.Fault(vf(x)) }
		case lis.FieldNullify:
			return func(x *Exec) { x.nullify = vf(x) != 0 }
		}
		c.errf(pos, "internal: assignment to read-only builtin '%s'", f.Name)
	}
	slot := c.sim.fslot[f.Index]
	if f.Width < 64 {
		mask := uint64(1)<<uint(f.Width) - 1
		if v.isC {
			k := v.c & mask
			return func(x *Exec) { x.fr[slot] = k }
		}
		vf := v.fn
		return func(x *Exec) { x.fr[slot] = vf(x) & mask }
	}
	if v.isC {
		k := v.c
		return func(x *Exec) { x.fr[slot] = k }
	}
	vf := v.fn
	return func(x *Exec) { x.fr[slot] = vf(x) }
}

func (c *compiler) compileCall(e *lis.CallExpr) value {
	b := e.Builtin
	switch b.Kind {
	case lis.BuiltinPure:
		args := make([]value, len(e.Args))
		allC := true
		for i, a := range e.Args {
			args[i] = c.compileExpr(a)
			allC = allC && args[i].isC
		}
		if allC {
			cv := make([]uint64, len(args))
			for i, a := range args {
				cv[i] = a.c
			}
			return constVal(lis.EvalPureBuiltin(b, cv))
		}
		return c.purBuiltin(b, args)
	case lis.BuiltinLoad:
		addr := c.compileExpr(e.Args[0]).force()
		size := b.Size
		c.work += 2
		if b.Signed {
			sh := uint(64 - 8*size)
			return value{fn: func(x *Exec) uint64 {
				v, f := x.M.LoadValue(addr(x), size)
				if f != mach.FaultNone {
					x.fault = f
					return 0
				}
				return uint64(int64(v<<sh) >> sh)
			}}
		}
		return value{fn: func(x *Exec) uint64 {
			v, f := x.M.LoadValue(addr(x), size)
			if f != mach.FaultNone {
				x.fault = f
				return 0
			}
			return v
		}}
	}
	c.errf(e.Pos, "internal: builtin '%s' in expression position", b.Name)
	return value{}
}

// purBuiltin compiles a pure builtin with at least one dynamic argument.
// The hottest builtins get dedicated closures; the rest evaluate through
// the shared table.
func (c *compiler) purBuiltin(b *lis.Builtin, args []value) value {
	c.work++
	switch b.Name {
	case "sext8":
		a := args[0].force()
		return value{fn: func(x *Exec) uint64 { return uint64(int64(int8(a(x)))) }}
	case "sext16":
		a := args[0].force()
		return value{fn: func(x *Exec) uint64 { return uint64(int64(int16(a(x)))) }}
	case "sext32":
		a := args[0].force()
		return value{fn: func(x *Exec) uint64 { return uint64(int64(int32(a(x)))) }}
	case "sext":
		if args[1].isC && args[1].c > 0 && args[1].c < 64 {
			a := args[0].force()
			sh := uint(64 - args[1].c)
			return value{fn: func(x *Exec) uint64 { return uint64(int64(a(x)<<sh) >> sh) }}
		}
	case "trunc":
		if args[1].isC && args[1].c < 64 {
			a := args[0].force()
			mask := uint64(1)<<args[1].c - 1
			return value{fn: func(x *Exec) uint64 { return a(x) & mask }}
		}
	case "bits":
		if args[1].isC && args[2].isC && args[1].c < 64 && args[2].c <= args[1].c {
			a := args[0].force()
			lo := args[2].c
			mask := uint64(1)<<(args[1].c-args[2].c+1) - 1
			return value{fn: func(x *Exec) uint64 { return a(x) >> lo & mask }}
		}
	case "asr":
		a0 := args[0].force()
		a1 := args[1].force()
		return value{fn: func(x *Exec) uint64 {
			s := a1(x)
			if s >= 64 {
				s = 63
			}
			return uint64(int64(a0(x)) >> s)
		}}
	case "lts":
		a0, a1 := args[0].force(), args[1].force()
		return value{fn: func(x *Exec) uint64 { return b2u(int64(a0(x)) < int64(a1(x))) }}
	case "ges":
		a0, a1 := args[0].force(), args[1].force()
		return value{fn: func(x *Exec) uint64 { return b2u(int64(a0(x)) >= int64(a1(x))) }}
	case "popcnt":
		a := args[0].force()
		return value{fn: func(x *Exec) uint64 { return uint64(bits.OnesCount64(a(x))) }}
	}
	fns := make([]evalFn, len(args))
	for i, a := range args {
		fns[i] = a.force()
	}
	switch len(fns) {
	case 1:
		f0 := fns[0]
		return value{fn: func(x *Exec) uint64 { return lis.EvalPureBuiltin(b, []uint64{f0(x)}) }}
	case 2:
		f0, f1 := fns[0], fns[1]
		return value{fn: func(x *Exec) uint64 { return lis.EvalPureBuiltin(b, []uint64{f0(x), f1(x)}) }}
	default:
		return value{fn: func(x *Exec) uint64 {
			av := make([]uint64, len(fns))
			for i, f := range fns {
				av[i] = f(x)
			}
			return lis.EvalPureBuiltin(b, av)
		}}
	}
}

// compiled statement with fault metadata for sequencing.
type cstmt struct {
	run      stepFn
	canFault bool
}

// compileBlock compiles the live statements of a block into a fused stepFn
// (nil when everything in it is dead). Fault checks are inserted after
// fault-capable statements so a faulting instruction stops mid-step.
func (c *compiler) compileBlock(b *lis.Block) (stepFn, bool) {
	var stmts []cstmt
	for _, st := range b.Stmts {
		if !c.li.stmt[st] {
			continue
		}
		if cs := c.compileStmt(st); cs.run != nil {
			stmts = append(stmts, cs)
		}
	}
	return fuse(stmts)
}

// fuse sequences compiled statements with fault short-circuiting.
func fuse(stmts []cstmt) (stepFn, bool) {
	switch len(stmts) {
	case 0:
		return nil, false
	case 1:
		return stmts[0].run, stmts[0].canFault
	}
	canFault := false
	anyMidFault := false
	for i, s := range stmts {
		if s.canFault {
			canFault = true
			if i < len(stmts)-1 {
				anyMidFault = true
			}
		}
	}
	if !anyMidFault {
		// No statement before the last can fault: plain sequencing. Pairs
		// are the most common fusion; give them a loop-free closure.
		if len(stmts) == 2 {
			f0, f1 := stmts[0].run, stmts[1].run
			return func(x *Exec) { f0(x); f1(x) }, canFault
		}
		fns := make([]stepFn, len(stmts))
		for i, s := range stmts {
			fns[i] = s.run
		}
		return func(x *Exec) {
			for _, f := range fns {
				f(x)
			}
		}, canFault
	}
	if len(stmts) == 2 {
		// First statement can fault; the second must not run after a fault.
		f0, f1 := stmts[0].run, stmts[1].run
		return func(x *Exec) {
			f0(x)
			if x.fault != mach.FaultNone {
				return
			}
			f1(x)
		}, true
	}
	type guarded struct {
		run   stepFn
		guard bool // check fault after running
	}
	gs := make([]guarded, len(stmts))
	for i, s := range stmts {
		gs[i] = guarded{run: s.run, guard: s.canFault && i < len(stmts)-1}
	}
	return func(x *Exec) {
		for _, g := range gs {
			g.run(x)
			if g.guard && x.fault != mach.FaultNone {
				return
			}
		}
	}, true
}

func (c *compiler) compileStmt(st lis.Stmt) cstmt {
	switch st := st.(type) {
	case *lis.Block:
		run, cf := c.compileBlock(st)
		return cstmt{run: run, canFault: cf}
	case *lis.AssignStmt:
		v := c.compileExpr(st.RHS)
		cf := exprHasEffect(st.RHS)
		switch st.Ref {
		case lis.RefField:
			return cstmt{run: c.assignField(st.Sym.(*lis.Field), v, st.Pos), canFault: cf}
		case lis.RefLocal:
			slot := c.letSlots[st.Sym.(*lis.Local)]
			vf := v.force()
			c.work++
			return cstmt{run: func(x *Exec) { x.fr[slot] = vf(x) }, canFault: cf}
		}
		c.errf(st.Pos, "internal: unresolved assignment")
	case *lis.LetStmt:
		slot := c.nextLet + c.sim.frameFields
		c.nextLet++
		c.letSlots[st.Local] = slot
		vf := c.compileExpr(st.RHS).force()
		c.work++
		return cstmt{run: func(x *Exec) { x.fr[slot] = vf(x) }, canFault: exprHasEffect(st.RHS)}
	case *lis.IfStmt:
		// Condition operands are compiled here (not through compileBinary)
		// so a comparison condition can fuse into the branch closure below,
		// saving an indirect call per evaluation. Work accounting is
		// unchanged: binaryVal charges the same node compileBinary would.
		var cond, bl, br value
		be, isBin := st.Cond.(*lis.BinaryExpr)
		if isBin {
			bl = c.compileExpr(be.L)
			br = c.compileExpr(be.R)
			cond = c.binaryVal(be, bl, br)
		} else {
			cond = c.compileExpr(st.Cond)
		}
		thenFn, thenF := c.compileBlock(st.Then)
		var elseFn stepFn
		elseF := false
		if st.Else != nil && c.li.stmt[st.Else] {
			cs := c.compileStmt(st.Else)
			elseFn, elseF = cs.run, cs.canFault
		}
		cf := thenF || elseF || exprHasEffect(st.Cond)
		if cond.isC {
			if cond.c != 0 {
				return cstmt{run: thenFn, canFault: thenF}
			}
			return cstmt{run: elseFn, canFault: elseF}
		}
		cfn := cond.fn
		c.work++
		if elseFn == nil {
			if thenFn == nil {
				return cstmt{run: func(x *Exec) { cfn(x) }, canFault: cf}
			}
			tf := thenFn
			if isBin {
				if fs := fuseCondThen(be.Op, bl, br, tf); fs != nil {
					return cstmt{run: fs, canFault: cf}
				}
			}
			return cstmt{run: func(x *Exec) {
				if cfn(x) != 0 {
					tf(x)
				}
			}, canFault: cf}
		}
		tf, ef := thenFn, elseFn
		if tf == nil {
			tf = func(*Exec) {}
		}
		return cstmt{run: func(x *Exec) {
			if cfn(x) != 0 {
				tf(x)
			} else {
				ef(x)
			}
		}, canFault: cf}
	case *lis.CallStmt:
		return c.compileCallStmt(st)
	}
	c.errf(lis.Pos{}, "internal: unknown statement")
	return cstmt{}
}

func (c *compiler) compileCallStmt(st *lis.CallStmt) cstmt {
	b := st.Builtin
	c.work += 2
	switch b.Kind {
	case lis.BuiltinStore:
		addr := c.compileExpr(st.Args[0]).force()
		val := c.compileExpr(st.Args[1]).force()
		size := b.Size
		return cstmt{run: func(x *Exec) {
			if f := x.M.StoreValue(addr(x), val(x), size); f != mach.FaultNone {
				x.fault = f
			}
		}, canFault: true}
	case lis.BuiltinEffect:
		switch b.Name {
		case "syscall":
			return cstmt{run: func(x *Exec) {
				if x.M.Syscall == nil {
					x.fault = mach.FaultIllegal
					return
				}
				x.M.Syscall(x.M)
				if x.M.Halted {
					x.fault = mach.FaultHalt
				}
			}, canFault: true}
		case "halt":
			code := c.compileExpr(st.Args[0]).force()
			return cstmt{run: func(x *Exec) {
				x.M.Halt(int(code(x)))
				x.fault = mach.FaultHalt
			}, canFault: true}
		}
	}
	c.errf(st.Pos, "internal: unknown effect builtin '%s'", b.Name)
	return cstmt{}
}

// compileOp compiles one generated operand op (decode extract / read /
// write).
func (c *compiler) compileOp(op iop) cstmt {
	b := op.bind
	sp := b.Acc.Space
	spIdx := sp.Index
	count := sp.Count
	zero := sp.Zero
	switch op.kind {
	case opExtract:
		var v value
		if b.IdxEnc != nil {
			v = c.encValue(b.IdxEnc)
		} else {
			v = constVal(uint64(b.IdxConst))
		}
		return cstmt{run: c.assignField(b.Op.IdxField, v, b.Pos)}
	case opRead:
		idx := c.operandIndex(b, count)
		var v value
		c.work++
		if idx.isC {
			k := int(idx.c)
			if k == zero {
				v = constVal(0)
				c.work--
			} else if f := b.Op.Value; !f.Builtin {
				// Fused read+assign (translated mode hoists the index to a
				// constant): one closure, no intermediate value call. Work
				// accounting matches the unfused pair exactly.
				c.work++
				slot := c.sim.fslot[f.Index]
				if f.Width < 64 {
					mask := uint64(1)<<uint(f.Width) - 1
					return cstmt{run: func(x *Exec) { x.fr[slot] = x.spaces[spIdx].Vals[k] & mask }}
				}
				return cstmt{run: func(x *Exec) { x.fr[slot] = x.spaces[spIdx].Vals[k] }}
			} else {
				v = value{fn: func(x *Exec) uint64 { return x.spaces[spIdx].Vals[k] }}
			}
		} else {
			idxF := idx.fn
			v = value{fn: func(x *Exec) uint64 { return x.spaces[spIdx].Read(int(idxF(x))) }}
		}
		return cstmt{run: c.assignField(b.Op.Value, v, b.Pos)}
	case opWrite:
		idx := c.operandIndex(b, count)
		val := c.readField(b.Op.Value, b.Pos).force()
		c.work++
		if c.sim.BS.Spec {
			c.work += 2 // undo-journal append per architectural write
			if idx.isC {
				k := int(idx.c)
				return cstmt{run: func(x *Exec) { x.M.WriteReg(x.spaces[spIdx], k, val(x)) }}
			}
			idxF := idx.fn
			return cstmt{run: func(x *Exec) { x.M.WriteReg(x.spaces[spIdx], int(idxF(x)), val(x)) }}
		}
		if idx.isC {
			k := int(idx.c)
			if k == zero {
				return cstmt{run: func(x *Exec) { val(x) }}
			}
			return cstmt{run: func(x *Exec) { x.spaces[spIdx].Vals[k] = val(x) }}
		}
		idxF := idx.fn
		return cstmt{run: func(x *Exec) { x.spaces[spIdx].Write(int(idxF(x)), val(x)) }}
	}
	c.errf(b.Pos, "internal: compileOp on action")
	return cstmt{}
}

// operandIndex produces the register index for a binding: a compile-time
// constant in translated mode (decode hoisted) or for constant bindings;
// otherwise the decoded index field's storage is read, so a timing
// simulator may redirect operand access between Step calls by rewriting
// the index field in the record. The index is clamped into the space.
func (c *compiler) operandIndex(b *lis.OperandBinding, count int) value {
	if b.IdxEnc == nil {
		return constVal(uint64(b.IdxConst))
	}
	if c.constBits {
		v := c.encValue(b.IdxEnc)
		return constVal(v.c % uint64(count))
	}
	vf := c.readField(b.Op.IdxField, b.Pos).force()
	if count&(count-1) == 0 {
		mask := uint64(count - 1)
		return value{fn: func(x *Exec) uint64 { return vf(x) & mask }}
	}
	n := uint64(count)
	return value{fn: func(x *Exec) uint64 { return vf(x) % n }}
}
