// Package mach provides the machine substrate shared by all synthesized
// functional simulators: sparse byte-addressable memory, architectural
// register spaces, faults, the speculation undo journal, and the Machine
// type that ties one hardware context together.
//
// The substrate is deliberately independent of any ISA: endianness, register
// space shapes, and calling conventions are all configured by the ISA layer.
//
// # Concurrency contract
//
// The mutable machine state — Memory, Space, Machine, Journal — is NOT safe
// for concurrent use. Even a plain Load mutates Memory (the one-entry page
// lookup cache, lazy page allocation), so read-only sharing is not an
// option either: a Memory and everything attached to it belong to exactly
// one goroutine at a time.
//
// Parallel simulation therefore isolates per worker by construction: each
// worker owns its own Machine (with its own Memory, Spaces, and Journal)
// and its own core.Exec and sysemu.Emulator. What IS safe to share across
// workers is everything upstream of the machine: a loaded isa.ISA, its
// lis.Spec, an asm.Program, and a synthesized core.Sim (whose shared
// translation cache is internally synchronized). This contract is exercised
// under the race detector by TestSharedSimParallelDeterminism in
// internal/expt.
package mach

import (
	"fmt"
	"sort"
)

// ByteOrder selects the memory byte order of a simulated machine.
type ByteOrder int

const (
	// LittleEndian stores the least-significant byte at the lowest address.
	LittleEndian ByteOrder = iota
	// BigEndian stores the most-significant byte at the lowest address.
	BigEndian
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big"
	}
	return "little"
}

const (
	pageShift = 16 // 64 KiB pages
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page struct {
	data [pageSize]byte
	// gen counts stores into this page. Translated code caches record the
	// generation of the pages their code came from and re-translate when it
	// changes (self-modifying code / program reload).
	gen uint64
	// code marks a page that translated code has been fetched from (see
	// MarkCode). Stores into code-marked pages additionally advance the
	// memory-wide code-store epoch, which block chaining uses to validate
	// chain links without walking per-page generations.
	code bool
}

// Memory is a sparse, paged, byte-addressable memory. The zero page
// (addresses below 4096) is never mapped so that null-pointer dereferences
// in simulated programs fault instead of silently reading zeros.
//
// Memory is shared between the hardware contexts (Machines) of a simulated
// multicore; it is not safe for concurrent use from multiple goroutines
// without external synchronization (see the package-level concurrency
// contract — even Load mutates the lookup cache below).
type Memory struct {
	order ByteOrder
	pages map[uint64]*page
	// One-entry lookup cache: the vast majority of accesses hit the same
	// page as the previous access.
	lastIdx  uint64
	lastPage *page
	haveLast bool
	// codeGen is the memory-wide code-store epoch: it advances on every
	// store that touches a code-marked page (and never otherwise). A cached
	// artifact validated while codeGen == E stays valid for as long as
	// codeGen == E, because no byte any translation was built from can have
	// changed in between. This gives the dispatch hot path a single O(1)
	// load-and-compare in place of per-page generation walks.
	codeGen uint64
}

// NewMemory returns an empty memory with the given byte order.
func NewMemory(order ByteOrder) *Memory {
	return &Memory{order: order, pages: make(map[uint64]*page)}
}

// Order reports the memory's byte order.
func (m *Memory) Order() ByteOrder { return m.order }

func (m *Memory) pageFor(addr uint64) *page {
	idx := addr >> pageShift
	if m.haveLast && m.lastIdx == idx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil {
		p = &page{}
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage, m.haveLast = idx, p, true
	return p
}

// Gen returns the store-generation counter of the page containing addr.
func (m *Memory) Gen(addr uint64) uint64 { return m.pageFor(addr).gen }

// CodeGen returns the memory-wide code-store epoch (see the codeGen field).
func (m *Memory) CodeGen() uint64 { return m.codeGen }

// MarkCode flags the page containing addr as holding translated code.
// Translators call it for every page they fetch instruction bytes from;
// from then on stores into the page advance the code-store epoch so cached
// dispatch state (chain links, epoch-validated cache slots) revalidates.
// Marking is monotonic and idempotent; data-only pages never pay for it.
func (m *Memory) MarkCode(addr uint64) { m.pageFor(addr).code = true }

// LoadGen is Load and Gen in one page walk: it reads size bytes at addr and
// also returns the store-generation counter of the page containing addr.
// Translation misses use it to fetch instruction bytes and capture the
// generation they validate against without paying pageFor twice.
func (m *Memory) LoadGen(addr uint64, size int) (uint64, uint64, Fault) {
	if addr < 4096 {
		return 0, 0, FaultMemory
	}
	p := m.pageFor(addr)
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		return m.get(p.data[off:off+uint64(size)], size), p.gen, FaultNone
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		buf[i] = m.pageFor(a).data[a&pageMask]
	}
	return m.get(buf[:size], size), p.gen, FaultNone
}

// Load reads size bytes (1, 2, 4, or 8) at addr and returns them
// zero-extended to 64 bits. Accesses to the null page fault.
func (m *Memory) Load(addr uint64, size int) (uint64, Fault) {
	if addr < 4096 {
		return 0, FaultMemory
	}
	p := m.pageFor(addr)
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		return m.get(p.data[off:off+uint64(size)], size), FaultNone
	}
	// Access straddles a page boundary: assemble byte by byte.
	var buf [8]byte
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		buf[i] = m.pageFor(a).data[a&pageMask]
	}
	return m.get(buf[:size], size), FaultNone
}

// Store writes the low size bytes (1, 2, 4, or 8) of val at addr.
// Accesses to the null page fault.
func (m *Memory) Store(addr uint64, val uint64, size int) Fault {
	if addr < 4096 {
		return FaultMemory
	}
	p := m.pageFor(addr)
	p.gen++
	if p.code {
		m.codeGen++
	}
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		m.put(p.data[off:off+uint64(size)], val, size)
		return FaultNone
	}
	var buf [8]byte
	m.put(buf[:size], val, size)
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		q := m.pageFor(a)
		q.gen++
		if q.code && q != p {
			m.codeGen++
		}
		q.data[a&pageMask] = buf[i]
	}
	return FaultNone
}

func (m *Memory) get(b []byte, size int) uint64 {
	var v uint64
	if m.order == LittleEndian {
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for i := 0; i < size; i++ {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

func (m *Memory) put(b []byte, v uint64, size int) {
	if m.order == LittleEndian {
		for i := 0; i < size; i++ {
			b[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := size - 1; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// WriteBytes copies raw bytes into memory (used by loaders); it bypasses the
// null-page check so loaders can place data anywhere.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.pageFor(addr)
		p.gen++
		if p.code {
			m.codeGen++
		}
		off := addr & pageMask
		n := copy(p.data[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n raw bytes out of memory into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint64(i)
		out[i] = m.pageFor(a).data[a&pageMask]
	}
	return out
}

// MappedPages reports how many pages have been touched; useful in tests.
func (m *Memory) MappedPages() int { return len(m.pages) }

// PageImage returns a copy of the page containing addr along with its
// store-generation counter. Checkpointing walks PageBases and serializes
// each page image; the copy keeps the caller decoupled from subsequent
// stores.
func (m *Memory) PageImage(addr uint64) (data []byte, gen uint64) {
	p := m.pageFor(addr)
	out := make([]byte, pageSize)
	copy(out, p.data[:])
	return out, p.gen
}

// SetPageImage overwrites the page containing addr with data (nil or short
// data zero-fills the remainder) and advances the page's store-generation
// counter past both its current value and gen. The strictly-increasing
// bump means any translated code cached against this page — in this
// machine's Execs or another's — revalidates instead of silently executing
// stale bytes, no matter which direction the restore moved the contents.
func (m *Memory) SetPageImage(addr uint64, data []byte, gen uint64) {
	p := m.pageFor(addr)
	n := copy(p.data[:], data)
	for i := n; i < pageSize; i++ {
		p.data[i] = 0
	}
	if gen > p.gen {
		p.gen = gen
	}
	p.gen++
	if p.code {
		m.codeGen++
	}
}

// PageBases returns the base addresses of all mapped pages in ascending
// order. Differential checkers use it to walk exactly the memory a run
// touched without forcing page allocation elsewhere.
func (m *Memory) PageBases() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		out = append(out, idx<<pageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageSize returns the memory page granularity in bytes.
func PageSize() int { return pageSize }

// Fault identifies an architectural fault raised during instruction
// execution. FaultNone means no fault.
type Fault uint8

// Architectural fault codes.
const (
	FaultNone    Fault = iota
	FaultMemory        // access to unmapped/forbidden memory (null page)
	FaultIllegal       // undecodable or illegal instruction
	FaultHalt          // simulated program requested exit
	FaultBreak         // breakpoint/trap instruction
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultMemory:
		return "memory"
	case FaultIllegal:
		return "illegal"
	case FaultHalt:
		return "halt"
	case FaultBreak:
		return "break"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}
