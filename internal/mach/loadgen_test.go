package mach

import "testing"

// LoadGen must agree with Load + Gen on every path: in-page, straddling,
// and faulting. It exists so the translation hot path pays one page walk
// instead of two; these tests pin the equivalence the fusion relies on.

func TestLoadGenMatchesLoadPlusGen(t *testing.T) {
	m := NewMemory(LittleEndian)
	m.Store(0x10000, 0x1122334455667788, 8)
	m.Store(0x1fffc, 0xaabbccdd, 4) // last word of the page
	for _, tc := range []struct {
		addr uint64
		size int
	}{
		{0x10000, 4},
		{0x10000, 8},
		{0x10004, 4},
		{0x1fffc, 4},
		{0x30000, 4}, // untouched page: zero value, zero gen
	} {
		wantV, wantF := m.Load(tc.addr, tc.size)
		wantG := m.Gen(tc.addr)
		v, g, f := m.LoadGen(tc.addr, tc.size)
		if v != wantV || g != wantG || f != wantF {
			t.Errorf("LoadGen(%#x, %d) = (%#x, %d, %v), want (%#x, %d, %v)",
				tc.addr, tc.size, v, g, f, wantV, wantG, wantF)
		}
	}
}

func TestLoadGenNullPageFaults(t *testing.T) {
	m := NewMemory(LittleEndian)
	if _, _, f := m.LoadGen(0, 4); f != FaultMemory {
		t.Errorf("LoadGen(0) fault = %v, want FaultMemory", f)
	}
	if _, _, f := m.LoadGen(4092, 4); f != FaultMemory {
		t.Errorf("LoadGen(4092) fault = %v, want FaultMemory", f)
	}
}

func TestLoadGenStraddle(t *testing.T) {
	m := NewMemory(LittleEndian)
	end := uint64(0x20000) // boundary between two pages
	m.Store(end-2, 0xbeef, 2)
	m.Store(end, 0xf00d, 2)
	v, g, f := m.LoadGen(end-2, 4)
	if f != FaultNone {
		t.Fatalf("straddle fault %v", f)
	}
	if want, _ := m.Load(end-2, 4); v != want {
		t.Errorf("straddle value %#x, want %#x", v, want)
	}
	// The generation reported is the first page's — the one the caller
	// validates a cached translation against.
	if want := m.Gen(end - 2); g != want {
		t.Errorf("straddle gen %d, want %d", g, want)
	}
}

// The regression pair for the transUnit double page walk: resolving bits
// and generation used to take two pageFor lookups (Load then Gen); fused
// they take one. The delta between these two benchmarks is the cost the
// fusion removes from every first-level translation-cache miss.

func BenchmarkMemLoadPlusGen(b *testing.B) {
	m := NewMemory(LittleEndian)
	m.Store(0x10000, 0x11223344, 4)
	for n := 0; n < b.N; n++ {
		v, f := m.Load(0x10000, 4)
		g := m.Gen(0x10000)
		if f != FaultNone || v == 0 || g == 0 {
			b.Fatal("bad load")
		}
	}
}

func BenchmarkMemLoadGen(b *testing.B) {
	m := NewMemory(LittleEndian)
	m.Store(0x10000, 0x11223344, 4)
	for n := 0; n < b.N; n++ {
		v, g, f := m.LoadGen(0x10000, 4)
		if f != FaultNone || v == 0 || g == 0 {
			b.Fatal("bad load")
		}
	}
}
