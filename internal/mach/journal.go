package mach

// The undo journal implements the paper's speculation support (§IV-B4):
// "the instruction information structure carries enough information to roll
// back the architectural effects of each instruction." We centralize the
// log in the machine rather than the instruction record; a Mark taken
// before an instruction (or any span of instructions) rolls back everything
// executed since.

type entryKind uint8

const (
	entryReg entryKind = iota
	entryMem
	entryPC
)

type journalEntry struct {
	kind  entryKind
	space *Space
	idx   int
	addr  uint64
	old   uint64
	size  uint8
}

// Journal is an undo log of architectural writes.
type Journal struct {
	entries []journalEntry
}

// Mark identifies a point in the journal that can be rolled back to.
type Mark int

// Mark returns the current journal position.
func (j *Journal) Mark() Mark { return Mark(len(j.entries)) }

// Len reports the number of journaled writes (for tests and stats).
func (j *Journal) Len() int { return len(j.entries) }

func (j *Journal) logReg(s *Space, idx int, old uint64) {
	j.entries = append(j.entries, journalEntry{kind: entryReg, space: s, idx: idx, old: old})
}

func (j *Journal) logMem(addr, old uint64, size int) {
	j.entries = append(j.entries, journalEntry{kind: entryMem, addr: addr, old: old, size: uint8(size)})
}

func (j *Journal) logPC(old uint64) {
	j.entries = append(j.entries, journalEntry{kind: entryPC, old: old})
}

// Rollback undoes, in reverse order, every architectural write journaled
// since mark, restoring registers and memory on machine m (and the PC, for
// callers that journaled it via SetPC — the synthesized simulators leave PC
// restoration to the speculation driver, which knows the PC at each mark).
func (j *Journal) Rollback(m *Machine, mark Mark) {
	for i := len(j.entries) - 1; i >= int(mark); i-- {
		e := j.entries[i]
		switch e.kind {
		case entryReg:
			e.space.Vals[e.idx] = e.old
		case entryMem:
			m.Mem.Store(e.addr, e.old, int(e.size))
		case entryPC:
			m.PC = e.old
		}
	}
	j.entries = j.entries[:mark]
}

// Commit discards journal entries older than mark: those writes become
// permanent and can no longer be rolled back. Marks taken after the
// committed prefix must be rebased by subtracting the committed mark.
// Committing bounds journal growth during long speculative runs.
func (j *Journal) Commit(mark Mark) {
	n := copy(j.entries, j.entries[mark:])
	j.entries = j.entries[:n]
}

// journalShrinkCap is the entry capacity above which Reset releases the
// backing array instead of retaining it. One speculative burst can grow the
// journal to millions of entries (~48 bytes each); without the shrink a
// week-long resumable run would hold its peak-size buffer forever. Below
// the threshold the array is kept, so steady-state runs still allocate
// nothing per Reset.
const journalShrinkCap = 1 << 15

// Reset empties the journal, releasing an oversized backing array (see
// journalShrinkCap) so long-lived machines do not retain peak-size buffers.
func (j *Journal) Reset() {
	if cap(j.entries) > journalShrinkCap {
		j.entries = nil
		return
	}
	j.entries = j.entries[:0]
}
