package mach

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemoryRoundTripLittle(t *testing.T) {
	m := NewMemory(LittleEndian)
	for _, size := range []int{1, 2, 4, 8} {
		addr := uint64(0x10000 + size*64)
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if f := m.Store(addr, want, size); f != FaultNone {
			t.Fatalf("store size %d: fault %v", size, f)
		}
		got, f := m.Load(addr, size)
		if f != FaultNone || got != want {
			t.Fatalf("size %d: got %#x fault %v, want %#x", size, got, f, want)
		}
	}
}

func TestMemoryEndianness(t *testing.T) {
	le := NewMemory(LittleEndian)
	be := NewMemory(BigEndian)
	le.Store(0x20000, 0x0102030405060708, 8)
	be.Store(0x20000, 0x0102030405060708, 8)
	lb := le.ReadBytes(0x20000, 8)
	bb := be.ReadBytes(0x20000, 8)
	if lb[0] != 0x08 || lb[7] != 0x01 {
		t.Errorf("little-endian layout wrong: % x", lb)
	}
	if bb[0] != 0x01 || bb[7] != 0x08 {
		t.Errorf("big-endian layout wrong: % x", bb)
	}
	// Byte-wise view must reassemble identically on reload.
	lv, _ := le.Load(0x20000, 8)
	bv, _ := be.Load(0x20000, 8)
	if lv != bv || lv != 0x0102030405060708 {
		t.Errorf("reload mismatch: %#x %#x", lv, bv)
	}
}

func TestMemoryNullPageFaults(t *testing.T) {
	m := NewMemory(LittleEndian)
	if _, f := m.Load(8, 4); f != FaultMemory {
		t.Errorf("null load fault = %v, want memory", f)
	}
	if f := m.Store(0, 1, 1); f != FaultMemory {
		t.Errorf("null store fault = %v, want memory", f)
	}
	if _, f := m.Load(4096, 4); f != FaultNone {
		t.Errorf("first legal address faulted: %v", f)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory(LittleEndian)
	addr := uint64(2*pageSize - 3) // 8-byte access crossing a page boundary
	want := uint64(0xdeadbeefcafef00d)
	m.Store(addr, want, 8)
	got, f := m.Load(addr, 8)
	if f != FaultNone || got != want {
		t.Fatalf("straddle: got %#x fault %v", got, f)
	}
	// Big-endian straddle too.
	b := NewMemory(BigEndian)
	b.Store(addr, want, 8)
	if got, _ := b.Load(addr, 8); got != want {
		t.Fatalf("big-endian straddle: got %#x", got)
	}
}

func TestMemoryGenCounterAdvancesOnStore(t *testing.T) {
	m := NewMemory(LittleEndian)
	addr := uint64(0x30000)
	g0 := m.Gen(addr)
	m.Store(addr, 1, 4)
	if m.Gen(addr) == g0 {
		t.Error("generation did not advance after store")
	}
	g1 := m.Gen(addr)
	m.Store(addr+pageSize, 1, 4) // different page
	if m.Gen(addr) != g1 {
		t.Error("store to other page changed this page's generation")
	}
}

func TestMemoryLoadStoreProperty(t *testing.T) {
	m := NewMemory(BigEndian)
	f := func(addrSeed uint32, val uint64, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		addr := uint64(addrSeed)%(1<<24) + 4096
		if ft := m.Store(addr, val, size); ft != FaultNone {
			return false
		}
		got, ft := m.Load(addr, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return ft == FaultNone && got == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriteReadBytes(t *testing.T) {
	m := NewMemory(LittleEndian)
	data := []byte("hello, simulated world")
	m.WriteBytes(pageSize-4, data) // straddles pages
	got := m.ReadBytes(pageSize-4, len(data))
	if string(got) != string(data) {
		t.Errorf("round trip: %q", got)
	}
}

func testDefs() []SpaceDef {
	return []SpaceDef{
		{Name: "r", Count: 32, Width: 64, ZeroReg: 31},
		{Name: "c", Count: 4, Width: 64, ZeroReg: -1},
	}
}

func TestZeroRegister(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.WriteReg(r, 31, 0x1234)
	if got := r.Read(31); got != 0 {
		t.Errorf("zero register read %#x", got)
	}
	r.Write(31, 5)
	if r.Vals[31] != 0 {
		t.Errorf("zero register storage mutated")
	}
	m.WriteReg(r, 3, 42)
	if r.Read(3) != 42 {
		t.Errorf("r3 = %d", r.Read(3))
	}
}

func TestJournalRollbackRestoresEverything(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.PC = 0x1000
	r.Vals[1] = 11
	m.Mem.Store(0x40000, 0xaa, 1)

	m.JournalOn = true
	mark := m.Journal.Mark()
	m.WriteReg(r, 1, 99)
	m.StoreValue(0x40000, 0xbb, 1)
	m.SetPC(0x2000)
	if r.Read(1) != 99 || m.PC != 0x2000 {
		t.Fatal("writes did not take effect")
	}
	m.Journal.Rollback(m, mark)
	if r.Read(1) != 11 {
		t.Errorf("r1 after rollback = %d", r.Read(1))
	}
	if v, _ := m.Mem.Load(0x40000, 1); v != 0xaa {
		t.Errorf("mem after rollback = %#x", v)
	}
	if m.PC != 0x1000 {
		t.Errorf("pc after rollback = %#x", m.PC)
	}
}

func TestJournalCommitRebase(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.JournalOn = true
	r.Vals[2] = 1
	m.WriteReg(r, 2, 2) // entry 0
	mid := m.Journal.Mark()
	m.WriteReg(r, 2, 3) // entry 1
	m.Journal.Commit(mid)
	if m.Journal.Len() != 1 {
		t.Fatalf("journal len after commit = %d", m.Journal.Len())
	}
	// Rolling back to the (rebased) start undoes only the uncommitted write.
	m.Journal.Rollback(m, 0)
	if r.Read(2) != 2 {
		t.Errorf("r2 = %d, want 2 (committed value)", r.Read(2))
	}
}

// TestJournalCommitThenRollbackSuffix drives the Commit/Rollback interplay
// the speculative engine depends on: after committing a prefix of the
// journal and rebasing the surviving marks, a rollback must restore exactly
// the uncommitted suffix — registers, memory, and PC all return to their
// values at the rebased mark, while the committed writes stay permanent.
func TestJournalCommitThenRollbackSuffix(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	c := m.MustSpace("c")
	m.JournalOn = true
	m.PC = 0x1000
	r.Vals[1] = 10
	c.Vals[0] = 1
	m.Mem.Store(0x40000, 0x11, 1)
	m.Mem.Store(0x40008, 0x22, 1)

	// Committed prefix: a register write, a memory write, and a PC move.
	base := m.Journal.Mark()
	m.WriteReg(r, 1, 20)
	m.StoreValue(0x40000, 0x33, 1)
	m.SetPC(0x1004)

	// Mark taken mid-stream, before the writes that will stay speculative.
	spec := m.Journal.Mark()
	m.WriteReg(r, 1, 30)
	m.WriteReg(c, 0, 2)
	m.StoreValue(0x40000, 0x44, 1)
	m.StoreValue(0x40008, 0x55, 1)
	m.SetPC(0x1008)

	// Retire the prefix: Commit(spec) makes entries [base, spec) permanent,
	// and every surviving mark rebases by subtracting the committed mark.
	m.Journal.Commit(spec)
	rebased := Mark(int(spec) - int(spec))
	if int(spec)-int(base) != 3 {
		t.Fatalf("prefix journaled %d entries, want 3 (reg, mem, pc)", int(spec)-int(base))
	}
	if m.Journal.Len() != 5 {
		t.Fatalf("journal len after commit = %d, want the 5 suffix entries", m.Journal.Len())
	}

	m.Journal.Rollback(m, rebased)

	// The speculative suffix is gone...
	if got := r.Read(1); got != 20 {
		t.Errorf("r1 = %d, want 20 (committed value, suffix undone)", got)
	}
	if got := c.Read(0); got != 1 {
		t.Errorf("c0 = %d, want 1", got)
	}
	if v, _ := m.Mem.Load(0x40000, 1); v != 0x33 {
		t.Errorf("mem[0x40000] = %#x, want 0x33 (committed store)", v)
	}
	if v, _ := m.Mem.Load(0x40008, 1); v != 0x22 {
		t.Errorf("mem[0x40008] = %#x, want 0x22 (original value)", v)
	}
	if m.PC != 0x1004 {
		t.Errorf("pc = %#x, want 0x1004 (committed move)", m.PC)
	}
	// ...and the journal is empty: nothing committed can roll back further.
	if m.Journal.Len() != 0 {
		t.Errorf("journal len after rollback = %d", m.Journal.Len())
	}
	m.Journal.Rollback(m, 0) // must be a no-op
	if got := r.Read(1); got != 20 || m.PC != 0x1004 {
		t.Error("rollback of empty journal disturbed committed state")
	}
}

func TestSpaceLookupError(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	s, err := m.Space("r")
	if err != nil || s == nil {
		t.Fatalf("Space(r) = %v, %v", s, err)
	}
	_, err = m.Space("nope")
	var use *UnknownSpaceError
	if !errors.As(err, &use) || use.Name != "nope" {
		t.Fatalf("Space(nope) error = %v, want *UnknownSpaceError{nope}", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSpace on unknown name did not panic")
		}
	}()
	m.MustSpace("nope")
}

func TestJournalNestedMarks(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.JournalOn = true
	outer := m.Journal.Mark()
	m.WriteReg(r, 4, 10)
	inner := m.Journal.Mark()
	m.WriteReg(r, 4, 20)
	m.Journal.Rollback(m, inner)
	if r.Read(4) != 10 {
		t.Fatalf("inner rollback: r4 = %d", r.Read(4))
	}
	m.Journal.Rollback(m, outer)
	if r.Read(4) != 0 {
		t.Fatalf("outer rollback: r4 = %d", r.Read(4))
	}
}

func TestSnapshotRestoreAndEqual(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	r.Vals[5] = 55
	m.PC = 0x500
	sn := m.Snapshot()
	r.Vals[5] = 66
	m.PC = 0x600
	sn2 := m.Snapshot()
	if ok, _ := sn.Equal(sn2, []string{"r", "c"}); ok {
		t.Error("distinct states compared equal")
	}
	m.Restore(sn)
	if m.PC != 0x500 || r.Vals[5] != 55 {
		t.Error("restore failed")
	}
	if ok, diff := sn.Equal(m.Snapshot(), []string{"r", "c"}); !ok {
		t.Errorf("restored state differs: %s", diff)
	}
}

func TestLoadHookOverride(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	m.Mem.Store(0x50000, 7, 8)
	m.LoadHook = func(addr uint64, size int, val uint64) uint64 { return val + 100 }
	v, f := m.LoadValue(0x50000, 8)
	if f != FaultNone || v != 107 {
		t.Errorf("hooked load = %d fault %v", v, f)
	}
	m.LoadHook = nil
	v, _ = m.LoadValue(0x50000, 8)
	if v != 7 {
		t.Errorf("unhooked load = %d", v)
	}
}

func TestHalt(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	m.Halt(3)
	if !m.Halted || m.ExitCode != 3 {
		t.Errorf("halt state: %v %d", m.Halted, m.ExitCode)
	}
}

func TestFaultStrings(t *testing.T) {
	for f, want := range map[Fault]string{
		FaultNone: "none", FaultMemory: "memory", FaultIllegal: "illegal",
		FaultHalt: "halt", FaultBreak: "break", Fault(99): "fault(99)",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
}

// TestJournalCommitAfterPartialRollback interleaves the two journal
// truncation operations the way the speculative engine (and the in-cell
// checkpoint restore path) does: speculate, roll part of it back, then
// commit a prefix of what survived. The surviving suffix must still roll
// back exactly, proving a checkpoint taken at the committed mark is
// consistent with journal state.
func TestJournalCommitAfterPartialRollback(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.JournalOn = true
	r.Vals[1] = 1

	m.WriteReg(r, 1, 2) // entry 0: will be committed
	mid := m.Journal.Mark()
	m.WriteReg(r, 1, 3) // entry 1: survives the partial rollback
	spec := m.Journal.Mark()
	m.WriteReg(r, 1, 4) // entry 2: rolled back first
	m.StoreValue(0x40000, 0x99, 1)

	m.Journal.Rollback(m, spec)
	if got := r.Read(1); got != 3 {
		t.Fatalf("r1 after partial rollback = %d, want 3", got)
	}
	if m.Journal.Len() != 2 {
		t.Fatalf("journal len after partial rollback = %d, want 2", m.Journal.Len())
	}

	// Commit the prefix below mid; the surviving mark rebases to zero.
	m.Journal.Commit(mid)
	if m.Journal.Len() != 1 {
		t.Fatalf("journal len after commit = %d, want 1", m.Journal.Len())
	}
	m.Journal.Rollback(m, 0)
	if got := r.Read(1); got != 2 {
		t.Errorf("r1 after final rollback = %d, want 2 (committed value)", got)
	}
	if v, _ := m.Mem.Load(0x40000, 1); v != 0 {
		t.Errorf("mem[0x40000] = %#x, want 0 (speculative store undone)", v)
	}
}

// TestJournalResetShrinksOversizedBuffer is the regression test for the
// Reset capacity bound: a speculative burst past journalShrinkCap must not
// leave its peak-size backing array live for the rest of a long run, while
// modest journals keep their storage.
func TestJournalResetShrinksOversizedBuffer(t *testing.T) {
	m := NewMachine(NewMemory(LittleEndian), testDefs())
	r := m.MustSpace("r")
	m.JournalOn = true

	// Modest use: Reset must retain capacity (no per-reset allocation).
	for i := 0; i < 100; i++ {
		m.WriteReg(r, 1, uint64(i))
	}
	m.Journal.Reset()
	if c := cap(m.Journal.entries); c == 0 {
		t.Fatal("modest journal lost its backing array on Reset")
	}

	// Oversized burst: Reset must release the array.
	for i := 0; i <= journalShrinkCap; i++ {
		m.WriteReg(r, 1, uint64(i))
	}
	if c := cap(m.Journal.entries); c <= journalShrinkCap {
		t.Fatalf("burst did not exceed shrink cap: cap %d", c)
	}
	m.Journal.Reset()
	if c := cap(m.Journal.entries); c > journalShrinkCap {
		t.Errorf("Reset retained oversized buffer: cap %d > %d", c, journalShrinkCap)
	}
	// The journal must still work after shrinking.
	mark := m.Journal.Mark()
	m.WriteReg(r, 1, 7)
	m.WriteReg(r, 1, 8)
	m.Journal.Rollback(m, mark)
	if got := r.Read(1); got != uint64(journalShrinkCap) {
		t.Errorf("r1 after post-shrink rollback = %d, want %d", got, journalShrinkCap)
	}
}

// TestPageImageRoundTrip exercises the checkpoint accessors: PageImage
// copies a page's bytes and generation, and SetPageImage restores them with
// a strictly-increasing generation bump so cached translations revalidate.
func TestPageImageRoundTrip(t *testing.T) {
	m := NewMemory(LittleEndian)
	m.Store(0x40000, 0xdeadbeef, 4)
	m.Store(0x4fff8, 0x1122334455667788, 8)
	data, gen := m.PageImage(0x40000)
	if len(data) != PageSize() {
		t.Fatalf("page image size %d, want %d", len(data), PageSize())
	}
	if gen == 0 {
		t.Fatal("stored page has zero generation")
	}
	// Mutate, then restore the image; contents must match the snapshot.
	m.Store(0x40000, 0, 4)
	m.SetPageImage(0x40000, data, gen)
	if v, _ := m.Load(0x40000, 4); v != 0xdeadbeef {
		t.Errorf("restored load = %#x", v)
	}
	if v, _ := m.Load(0x4fff8, 8); v != 0x1122334455667788 {
		t.Errorf("restored load = %#x", v)
	}
	if g := m.Gen(0x40000); g <= gen {
		t.Errorf("restore did not advance generation: %d <= %d", g, gen)
	}
	// Short data zero-fills the rest of the page.
	m.SetPageImage(0x40000, []byte{0xff}, 0)
	if v, _ := m.Load(0x40000, 1); v != 0xff {
		t.Errorf("short image first byte = %#x", v)
	}
	if v, _ := m.Load(0x40001, 8); v != 0 {
		t.Errorf("short image tail not zeroed: %#x", v)
	}
}
