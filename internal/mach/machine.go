package mach

import "fmt"

// SpaceDef describes one architectural register space (e.g. the integer
// register file, or a control-register file holding flags).
type SpaceDef struct {
	Name    string
	Count   int
	Width   int // register width in bits (<= 64)
	ZeroReg int // index of a hardwired-zero register, or -1
}

// Space is a live register file inside a Machine.
type Space struct {
	Def  SpaceDef
	Vals []uint64
}

// Read returns the value of register i (the hardwired zero register always
// reads as zero).
func (s *Space) Read(i int) uint64 {
	if i == s.Def.ZeroReg {
		return 0
	}
	return s.Vals[i]
}

// Write sets register i; writes to the hardwired zero register are dropped.
func (s *Space) Write(i int, v uint64) {
	if i == s.Def.ZeroReg {
		return
	}
	s.Vals[i] = v
}

// SyscallFn is invoked when simulated code executes the OS-entry
// instruction. It may mutate the machine (registers, memory, halt state).
type SyscallFn func(m *Machine)

// LoadHookFn lets a timing simulator observe or override the value returned
// by a memory load (the mechanism behind timing-directed memory control and
// speculative functional-first recovery, §II-C/§II-E of the paper).
type LoadHookFn func(addr uint64, size int, val uint64) uint64

// Machine is one hardware context: architectural registers plus a reference
// to (possibly shared) memory. Multiple Machines sharing one Memory model a
// multicore.
type Machine struct {
	CtxID  int
	PC     uint64
	Mem    *Memory
	Spaces []*Space
	byName map[string]*Space

	// Halted and ExitCode are set when the simulated program exits.
	Halted   bool
	ExitCode int

	// Syscall handles OS-entry instructions; nil means OS entry raises
	// FaultIllegal.
	Syscall SyscallFn
	// LoadHook, when non-nil, filters every memory load value.
	LoadHook LoadHookFn

	// Journal records architectural writes for rollback when speculation
	// support is enabled in the active buildset.
	Journal Journal
	// JournalOn is toggled by the synthesized simulator per buildset.
	JournalOn bool

	// Instret counts retired instructions.
	Instret uint64
}

// NewMachine builds a machine with the given register spaces over mem.
func NewMachine(mem *Memory, defs []SpaceDef) *Machine {
	m := &Machine{Mem: mem, byName: make(map[string]*Space, len(defs))}
	for _, d := range defs {
		s := &Space{Def: d, Vals: make([]uint64, d.Count)}
		m.Spaces = append(m.Spaces, s)
		m.byName[d.Name] = s
	}
	return m
}

// UnknownSpaceError reports a lookup of a register space the machine does
// not have (for example, a machine built from a different spec than the
// simulator driving it).
type UnknownSpaceError struct {
	Name string
}

func (e *UnknownSpaceError) Error() string {
	return fmt.Sprintf("mach: unknown register space %q", e.Name)
}

// Space returns the register space with the given name. Unknown names
// return a *UnknownSpaceError instead of panicking, so callers handed a
// machine from outside (user code, a different spec) can fail gracefully.
func (m *Machine) Space(name string) (*Space, error) {
	s := m.byName[name]
	if s == nil {
		return nil, &UnknownSpaceError{Name: name}
	}
	return s, nil
}

// MustSpace is Space for statically-known names (tests, examples, and
// tools addressing the spec they themselves loaded); it panics on unknown
// names. Code receiving machines from callers should use Space instead.
func (m *Machine) MustSpace(name string) *Space {
	s := m.byName[name]
	if s == nil {
		panic((&UnknownSpaceError{Name: name}).Error())
	}
	return s
}

// Halt marks the machine as exited with the given code.
func (m *Machine) Halt(code int) {
	m.Halted = true
	m.ExitCode = code
}

// LoadValue performs an architectural load, applying the load hook.
func (m *Machine) LoadValue(addr uint64, size int) (uint64, Fault) {
	v, f := m.Mem.Load(addr, size)
	if f == FaultNone && m.LoadHook != nil {
		v = m.LoadHook(addr, size, v)
	}
	return v, f
}

// StoreValue performs an architectural store, journaling the old bytes when
// speculation support is active.
func (m *Machine) StoreValue(addr uint64, val uint64, size int) Fault {
	if m.JournalOn {
		old, f := m.Mem.Load(addr, size)
		if f != FaultNone {
			return f
		}
		m.Journal.logMem(addr, old, size)
	}
	return m.Mem.Store(addr, val, size)
}

// WriteReg performs an architectural register write through space s,
// journaling the old value when speculation support is active.
func (m *Machine) WriteReg(s *Space, idx int, val uint64) {
	if idx == s.Def.ZeroReg {
		return
	}
	if m.JournalOn {
		m.Journal.logReg(s, idx, s.Vals[idx])
	}
	s.Vals[idx] = val
}

// SetPC moves the architectural PC, journaling when speculation is active.
func (m *Machine) SetPC(pc uint64) {
	if m.JournalOn {
		m.Journal.logPC(m.PC)
	}
	m.PC = pc
}

// Snapshot captures the architectural register state (not memory) for
// checker-style comparisons (timing-first organization).
type Snapshot struct {
	PC     uint64
	Spaces [][]uint64
}

// Snapshot copies the current architectural register state.
func (m *Machine) Snapshot() Snapshot {
	sn := Snapshot{PC: m.PC, Spaces: make([][]uint64, len(m.Spaces))}
	for i, s := range m.Spaces {
		sn.Spaces[i] = append([]uint64(nil), s.Vals...)
	}
	return sn
}

// Restore overwrites the architectural register state from a snapshot.
func (m *Machine) Restore(sn Snapshot) {
	m.PC = sn.PC
	for i, s := range m.Spaces {
		copy(s.Vals, sn.Spaces[i])
	}
}

// Equal reports whether two snapshots are architecturally identical and, if
// not, a description of the first difference.
func (sn Snapshot) Equal(o Snapshot, names []string) (bool, string) {
	if sn.PC != o.PC {
		return false, fmt.Sprintf("pc: %#x vs %#x", sn.PC, o.PC)
	}
	for i := range sn.Spaces {
		for j := range sn.Spaces[i] {
			if sn.Spaces[i][j] != o.Spaces[i][j] {
				name := fmt.Sprintf("space%d", i)
				if i < len(names) {
					name = names[i]
				}
				return false, fmt.Sprintf("%s[%d]: %#x vs %#x", name, j, sn.Spaces[i][j], o.Spaces[i][j])
			}
		}
	}
	return true, ""
}
