package singlespec_test

import (
	"strings"
	"testing"

	"singlespec"
)

const demo = `
.text
_start:
    addq r31, 3, r1
    addq r31, 4, r2
    mulq r1, r2, r3
    addq r31, 1, r0
    bis  r3, r3, r16
    callsys
`

func TestFacadeEndToEnd(t *testing.T) {
	i, err := singlespec.LoadISA("alpha64")
	if err != nil {
		t.Fatal(err)
	}
	a, err := singlespec.NewAssembler(i)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Assemble("demo.s", demo)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := singlespec.Synthesize(i.Spec, "one_all", singlespec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := i.Spec.NewMachine()
	emu := singlespec.NewOSEmulator(i)
	emu.Install(m)
	prog.LoadInto(m)
	x := sim.NewExec(m)
	var rec singlespec.Record
	for n := 0; n < 100 && !m.Halted; n++ {
		x.ExecOne(&rec)
	}
	if !m.Halted || m.ExitCode != 12 {
		t.Fatalf("halted=%v exit=%d, want exit 12", m.Halted, m.ExitCode)
	}
}

func TestFacadeCustomSpec(t *testing.T) {
	src := singlespec.ISASource("arm32") + `
buildset tiny {
  visibility min show shifter_out;
  entrypoint go = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
`
	spec, err := singlespec.ParseSpec("custom.lis", src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := singlespec.Synthesize(spec, "tiny", singlespec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.Layout.Slot("shifter_out"); !ok {
		t.Error("tailored field missing from layout")
	}
	if sim.Layout.NumSlots() != 1 {
		t.Errorf("layout slots = %d, want 1", sim.Layout.NumSlots())
	}
}

func TestFacadeLists(t *testing.T) {
	if len(singlespec.ISANames()) != 3 || len(singlespec.StandardBuildsets()) != 12 {
		t.Error("bundled inventory wrong")
	}
	conv := singlespec.ISAConvention("ppc32")
	if conv.Stack != 1 {
		t.Errorf("ppc32 stack reg = %d", conv.Stack)
	}
}

func TestFacadeOrganizations(t *testing.T) {
	i, _ := singlespec.LoadISA("alpha64")
	a, _ := singlespec.NewAssembler(i)
	prog, err := a.Assemble("demo.s", demo)
	if err != nil {
		t.Fatal(err)
	}
	r, err := singlespec.RunFunctionalFirst(i, prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.ExitCode != 12 {
		t.Fatalf("org run: halted=%v exit=%d", r.Halted, r.ExitCode)
	}
	if !strings.Contains(r.Org, "functional-first") {
		t.Errorf("org = %q", r.Org)
	}
}
