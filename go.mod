module singlespec

go 1.22
