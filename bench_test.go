// Top-level benchmarks regenerating the paper's evaluation, one benchmark
// family per table (see DESIGN.md §5 and EXPERIMENTS.md):
//
//   - BenchmarkTableI   — description-size statistics (report-only).
//   - BenchmarkTableII  — simulation speed for each of the twelve derived
//     interfaces on each ISA (the MIPS metric mirrors the paper's rows).
//   - BenchmarkTableIII — base cost and incremental costs of detail.
//   - BenchmarkAblation* — footnote-5 interpreted mode and the design
//     ablations DESIGN.md §6 calls out.
//
// Run with:  go test -bench . -benchmem
package singlespec

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/expt"
	"singlespec/internal/isa"
)

// benchCell runs the full kernel mix once per iteration through one
// derived interface and reports simulated MIPS.
func benchCell(b *testing.B, isaName, buildset string, opts core.Options) {
	i, err := isa.Load(isaName)
	if err != nil {
		b.Fatal(err)
	}
	progs, err := expt.BuildMix(i, 1)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := core.Synthesize(i.Spec, buildset, opts)
	if err != nil {
		b.Fatal(err)
	}
	runners := make([]*expt.Runner, len(progs.Progs))
	for k, prog := range progs.Progs {
		runners[k] = expt.NewRunner(sim, i, prog)
		if _, _, err := runners[k].Run(); err != nil { // warmup + validate
			b.Fatalf("%s: %v", progs.Names[k], err)
		}
	}
	var instrs uint64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for k := range runners {
			in, _, err := runners[k].Run()
			if err != nil {
				b.Fatal(err)
			}
			instrs += in
		}
	}
	b.StopTimer()
	ns := float64(b.Elapsed().Nanoseconds()) / float64(instrs)
	b.ReportMetric(1e3/ns, "MIPS")
	b.ReportMetric(ns, "ns/instr")
}

// BenchmarkTableI reports the Table I description statistics as metrics
// (it performs no timed work).
func BenchmarkTableI(b *testing.B) {
	for _, name := range isa.Names() {
		b.Run(name, func(b *testing.B) {
			i, err := isa.Load(name)
			if err != nil {
				b.Fatal(err)
			}
			total := 0
			for _, bs := range i.Spec.Buildsets {
				total += bs.SrcLines
			}
			for n := 0; n < b.N; n++ {
				// Table I is static; nothing to time.
			}
			b.ReportMetric(float64(i.DescLines), "ISA-lines")
			b.ReportMetric(float64(total)/float64(len(i.Spec.Buildsets)), "lines/buildset")
			b.ReportMetric(float64(len(i.Spec.Instrs)), "instructions")
		})
	}
}

// BenchmarkTableII is the paper's Table II: one sub-benchmark per
// (semantic × informational × speculation) interface per ISA.
func BenchmarkTableII(b *testing.B) {
	for _, name := range isa.Names() {
		for _, bs := range isa.StdBuildsets {
			b.Run(fmt.Sprintf("%s/%s", name, bs), func(b *testing.B) {
				benchCell(b, name, bs, core.Options{})
			})
		}
	}
}

// BenchmarkTableIII measures the cells Table III derives its base and
// incremental costs from (base = One/Min/No; increments are differences of
// the reported ns/instr — see EXPERIMENTS.md).
func BenchmarkTableIII(b *testing.B) {
	rows := []struct{ label, bs string }{
		{"base_one_min", "one_min"},
		{"decode_info", "one_decode"},
		{"full_info", "one_all"},
		{"block_call", "block_min"},
		{"multiple_calls", "step_all"},
		{"speculation", "one_all_spec"},
	}
	for _, name := range isa.Names() {
		for _, row := range rows {
			b.Run(fmt.Sprintf("%s/%s", name, row.label), func(b *testing.B) {
				benchCell(b, name, row.bs, core.Options{})
			})
		}
	}
}

// BenchmarkAblationInterpreter is the paper's footnote 5: the One/Min
// interface with the translation cache disabled (decode every instruction).
func BenchmarkAblationInterpreter(b *testing.B) {
	for _, name := range isa.Names() {
		b.Run(name, func(b *testing.B) {
			benchCell(b, name, "one_min", core.Options{NoTranslate: true})
		})
	}
}

// BenchmarkAblationNoDCE disables dead-code elimination of hidden-field
// computation, isolating how much of the Min-detail win DCE provides.
func BenchmarkAblationNoDCE(b *testing.B) {
	for _, name := range isa.Names() {
		b.Run(name, func(b *testing.B) {
			benchCell(b, name, "one_min", core.Options{NoDCE: true})
		})
	}
}

// BenchmarkAblationBlockRecords forces per-instruction records at minimal
// detail, isolating the Block interface's record-elision win.
func BenchmarkAblationBlockRecords(b *testing.B) {
	b.Run("elided", func(b *testing.B) { benchCell(b, "alpha64", "block_min", core.Options{}) })
	b.Run("forced", func(b *testing.B) {
		benchCell(b, "alpha64", "block_min", core.Options{ForceRecords: true})
	})
}

// BenchmarkParallelEngine measures the experiment engine's worker-pool
// scaling: the full 36-cell Table II sweep at quick settings, serial versus
// one worker per host core. The reported tables are identical in both
// configurations; only wall-clock time should differ.
func BenchmarkParallelEngine(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				cfg := expt.Config{
					Scale: 1, MinDur: time.Millisecond,
					Workers: workers, Metric: expt.MetricWork,
				}
				if _, _, err := expt.TableII(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynthesis measures how long deriving a simulator from the
// specification takes (the cost the single-specification principle trades
// against hand-writing interfaces).
func BenchmarkSynthesis(b *testing.B) {
	for _, name := range isa.Names() {
		b.Run(name, func(b *testing.B) {
			i, err := isa.Load(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := core.Synthesize(i.Spec, "one_all", core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
